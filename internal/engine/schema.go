package engine

import (
	"fmt"

	"pvcagg/internal/algebra"
	"pvcagg/internal/pvc"
)

// InferSchema computes the output schema of a plan without evaluating it,
// mirroring the checks each operator performs in Eval. The binder and the
// optimizer use it to resolve column references and to decide which
// rewrites are schema-preserving.
func InferSchema(p Plan, db *pvc.Database) (pvc.Schema, error) {
	switch n := p.(type) {
	case *Scan:
		s, err := db.Schema(n.Table)
		if err != nil {
			return nil, err
		}
		return s.Clone(), nil
	case *Rename:
		in, err := InferSchema(n.Input, db)
		if err != nil {
			return nil, err
		}
		i := in.Index(n.From)
		if i < 0 {
			return nil, fmt.Errorf("engine: δ: unknown column %q in %s", n.From, n.Input)
		}
		if in.Index(n.To) >= 0 {
			return nil, fmt.Errorf("engine: δ: column %q already exists", n.To)
		}
		out := in.Clone()
		out[i].Name = n.To
		return out, nil
	case *Select:
		in, err := InferSchema(n.Input, db)
		if err != nil {
			return nil, err
		}
		for _, a := range n.Pred.Atoms {
			if in.Index(a.Left) < 0 {
				return nil, fmt.Errorf("engine: σ: unknown column %q", a.Left)
			}
			if a.RightVal == nil && in.Index(a.RightCol) < 0 {
				return nil, fmt.Errorf("engine: σ: unknown column %q", a.RightCol)
			}
		}
		return in, nil
	case *Project:
		in, err := InferSchema(n.Input, db)
		if err != nil {
			return nil, err
		}
		out := make(pvc.Schema, len(n.Cols))
		for i, c := range n.Cols {
			j := in.Index(c)
			if j < 0 {
				return nil, fmt.Errorf("engine: π: unknown column %q", c)
			}
			if in[j].Type == pvc.TModule {
				return nil, fmt.Errorf("engine: π: column %q is an aggregation attribute (Definition 5 constraint 1)", c)
			}
			out[i] = in[j]
		}
		return out, nil
	case *Prune:
		in, err := InferSchema(n.Input, db)
		if err != nil {
			return nil, err
		}
		out := make(pvc.Schema, len(n.Cols))
		for i, c := range n.Cols {
			j := in.Index(c)
			if j < 0 {
				return nil, fmt.Errorf("engine: π̂: unknown column %q", c)
			}
			out[i] = in[j]
		}
		return out, nil
	case *Product:
		l, err := InferSchema(n.L, db)
		if err != nil {
			return nil, err
		}
		r, err := InferSchema(n.R, db)
		if err != nil {
			return nil, err
		}
		for _, c := range r {
			if l.Index(c.Name) >= 0 {
				return nil, fmt.Errorf("engine: ×: duplicate column %q (rename first)", c.Name)
			}
		}
		return append(l.Clone(), r...), nil
	case *Join:
		l, err := InferSchema(n.L, db)
		if err != nil {
			return nil, err
		}
		r, err := InferSchema(n.R, db)
		if err != nil {
			return nil, err
		}
		out := l.Clone()
		for _, c := range r {
			if j := l.Index(c.Name); j >= 0 {
				if c.Type == pvc.TModule || l[j].Type == pvc.TModule {
					return nil, fmt.Errorf("engine: ⋈: aggregation column %q cannot be a join key", c.Name)
				}
				continue
			}
			out = append(out, c)
		}
		return out, nil
	case *Union:
		l, err := InferSchema(n.L, db)
		if err != nil {
			return nil, err
		}
		r, err := InferSchema(n.R, db)
		if err != nil {
			return nil, err
		}
		if !l.Equal(r) {
			return nil, fmt.Errorf("engine: ∪: incompatible schemas %v and %v", l.Names(), r.Names())
		}
		for _, c := range l {
			if c.Type == pvc.TModule {
				return nil, fmt.Errorf("engine: ∪: aggregation column %q (Definition 5 constraint 2)", c.Name)
			}
		}
		return l, nil
	case *GroupAgg:
		in, err := InferSchema(n.Input, db)
		if err != nil {
			return nil, err
		}
		out := make(pvc.Schema, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			j := in.Index(g)
			if j < 0 {
				return nil, fmt.Errorf("engine: $: unknown group-by column %q", g)
			}
			if in[j].Type == pvc.TModule {
				return nil, fmt.Errorf("engine: $: group-by column %q is an aggregation attribute", g)
			}
			out = append(out, in[j])
		}
		for _, a := range n.Aggs {
			if a.Agg != algebra.Count {
				j := in.Index(a.Over)
				if j < 0 {
					return nil, fmt.Errorf("engine: $: unknown aggregation column %q", a.Over)
				}
				if in[j].Type != pvc.TValue {
					return nil, fmt.Errorf("engine: $: aggregation over non-value column %q", a.Over)
				}
			}
			out = append(out, pvc.Col{Name: a.Out, Type: pvc.TModule, Agg: a.Agg})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("engine: InferSchema: unsupported operator %T", p)
	}
}

// Package value defines the carrier values used by the semirings, monoids
// and semimodules in this library.
//
// The paper works with countable carriers: the Booleans B (embedded as
// {0, 1}), the natural numbers N, and the extended naturals N±∞ used by the
// MIN and MAX monoids, whose neutral elements are +∞ and −∞ respectively.
// A V is an exact integer extended with positive and negative infinity, so
// neutral elements are first-class values rather than integer sentinels.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// infinity sign stored in V.inf: 0 means finite.
const (
	finite = 0
	negInf = -1
	posInf = 1
)

// V is an element of an extended-integer carrier: either an exact int64 or
// one of ±∞. The zero V is the integer 0, which is also the Boolean ⊥ and
// the additive neutral element of (N, +).
type V struct {
	inf int8
	n   int64
}

// Int returns the finite value n.
func Int(n int64) V { return V{finite, n} }

// Bool embeds a Boolean into the carrier: ⊥ ↦ 0, ⊤ ↦ 1.
func Bool(b bool) V {
	if b {
		return V{finite, 1}
	}
	return V{finite, 0}
}

// PosInf is +∞, the neutral element of the MIN monoid.
func PosInf() V { return V{posInf, 0} }

// NegInf is −∞, the neutral element of the MAX monoid.
func NegInf() V { return V{negInf, 0} }

// IsInt reports whether v is finite.
func (v V) IsInt() bool { return v.inf == finite }

// IsPosInf reports whether v is +∞.
func (v V) IsPosInf() bool { return v.inf == posInf }

// IsNegInf reports whether v is −∞.
func (v V) IsNegInf() bool { return v.inf == negInf }

// Int64 returns the finite value of v. It panics if v is infinite; callers
// must check IsInt first when infinities may occur.
func (v V) Int64() int64 {
	if v.inf != finite {
		panic("value: Int64 of infinite value " + v.String())
	}
	return v.n
}

// Truth interprets v as a Boolean semiring element: 0 is ⊥ and everything
// else (including infinities) is ⊤.
func (v V) Truth() bool { return v.inf != finite || v.n != 0 }

// IsZero reports whether v is the integer 0.
func (v V) IsZero() bool { return v.inf == finite && v.n == 0 }

// IsOne reports whether v is the integer 1.
func (v V) IsOne() bool { return v.inf == finite && v.n == 1 }

// Cmp compares v and w in the total order of the extended integers:
// −∞ < every finite value < +∞. It returns −1, 0 or +1.
func (v V) Cmp(w V) int {
	switch {
	case v.inf < w.inf:
		return -1
	case v.inf > w.inf:
		return 1
	case v.inf != finite: // both are the same infinity
		return 0
	case v.n < w.n:
		return -1
	case v.n > w.n:
		return 1
	default:
		return 0
	}
}

// Less reports v < w in the extended-integer order.
func (v V) Less(w V) bool { return v.Cmp(w) < 0 }

// Add returns v + w. Adding infinities of equal sign (or an infinity and a
// finite value) follows the usual extended-arithmetic rules; +∞ + −∞ is
// undefined and panics, as it never arises from well-formed expressions.
func (v V) Add(w V) V {
	switch {
	case v.inf == finite && w.inf == finite:
		return V{finite, v.n + w.n}
	case v.inf == finite:
		return w
	case w.inf == finite:
		return v
	case v.inf == w.inf:
		return v
	default:
		panic("value: +∞ + −∞ is undefined")
	}
}

// Mul returns v · w with extended-arithmetic sign rules; 0 · ±∞ is 0, which
// matches the semimodule law s ⊗ 0M = 0S ⊗ m = 0M used throughout.
func (v V) Mul(w V) V {
	if v.inf == finite && w.inf == finite {
		return V{finite, v.n * w.n}
	}
	if v.IsZero() || w.IsZero() {
		return V{finite, 0}
	}
	sign := int8(1)
	if (v.inf == negInf) != (w.inf == negInf) {
		// exactly one negative-infinite factor; finite factors contribute sign too
		sign = -1
	}
	vn, wn := v.n, w.n
	if v.inf == finite && vn < 0 {
		sign = -sign
	}
	if w.inf == finite && wn < 0 {
		sign = -sign
	}
	if v.inf != finite && w.inf != finite {
		if v.inf == w.inf {
			sign = 1
		} else {
			sign = -1
		}
	}
	if sign > 0 {
		return PosInf()
	}
	return NegInf()
}

// Min returns the smaller of v and w.
func (v V) Min(w V) V {
	if v.Cmp(w) <= 0 {
		return v
	}
	return w
}

// Max returns the larger of v and w.
func (v V) Max(w V) V {
	if v.Cmp(w) >= 0 {
		return v
	}
	return w
}

// Float converts v to a float64, mapping ±∞ to the IEEE infinities. Used
// only for reporting (expected values); exact computation never leaves V.
func (v V) Float() float64 {
	switch v.inf {
	case posInf:
		return math.Inf(1)
	case negInf:
		return math.Inf(-1)
	default:
		return float64(v.n)
	}
}

// String renders v; infinities print as "+inf" and "-inf".
func (v V) String() string {
	switch v.inf {
	case posInf:
		return "+inf"
	case negInf:
		return "-inf"
	default:
		return strconv.FormatInt(v.n, 10)
	}
}

// Parse parses the textual forms produced by String, plus "true"/"false"
// for the Boolean embedding.
func Parse(s string) (V, error) {
	switch s {
	case "+inf", "inf", "∞", "+∞":
		return PosInf(), nil
	case "-inf", "-∞":
		return NegInf(), nil
	case "true", "⊤":
		return Bool(true), nil
	case "false", "⊥":
		return Bool(false), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return V{}, fmt.Errorf("value: cannot parse %q: %w", s, err)
	}
	return Int(n), nil
}

// Key returns a compact comparable form of v usable as a map key. V itself
// is comparable, but Key normalises the unused n field of infinities so
// that distinct representations cannot arise.
func (v V) Key() V {
	if v.inf != finite {
		return V{v.inf, 0}
	}
	return v
}

package value

import "fmt"

// Theta is a binary comparison relation θ from the grammar of paper
// Figure 2: one of =, ≠, ≤, ≥, <, >.
type Theta int

// The six comparison operators.
const (
	EQ Theta = iota // =
	NE              // ≠
	LE              // ≤
	GE              // ≥
	LT              // <
	GT              // >
)

// Apply evaluates a θ b in the total order of extended integers.
func (t Theta) Apply(a, b V) bool {
	c := a.Cmp(b)
	switch t {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LE:
		return c <= 0
	case GE:
		return c >= 0
	case LT:
		return c < 0
	case GT:
		return c > 0
	default:
		panic(fmt.Sprintf("value: invalid Theta(%d)", int(t)))
	}
}

// Flip returns the comparison with swapped operands: a θ b iff b θ.Flip() a.
func (t Theta) Flip() Theta {
	switch t {
	case LE:
		return GE
	case GE:
		return LE
	case LT:
		return GT
	case GT:
		return LT
	default: // EQ, NE are symmetric
		return t
	}
}

// Negate returns the complement relation: a θ b iff !(a θ.Negate() b).
func (t Theta) Negate() Theta {
	switch t {
	case EQ:
		return NE
	case NE:
		return EQ
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case LT:
		return GE
	default:
		panic(fmt.Sprintf("value: invalid Theta(%d)", int(t)))
	}
}

// String renders the operator in ASCII as accepted by ParseTheta.
func (t Theta) String() string {
	switch t {
	case EQ:
		return "="
	case NE:
		return "!="
	case LE:
		return "<="
	case GE:
		return ">="
	case LT:
		return "<"
	case GT:
		return ">"
	default:
		return fmt.Sprintf("Theta(%d)", int(t))
	}
}

// ParseTheta parses the ASCII and Unicode spellings of the six operators.
func ParseTheta(s string) (Theta, error) {
	switch s {
	case "=", "==":
		return EQ, nil
	case "!=", "<>", "≠":
		return NE, nil
	case "<=", "≤":
		return LE, nil
	case ">=", "≥":
		return GE, nil
	case "<":
		return LT, nil
	case ">":
		return GT, nil
	}
	return 0, fmt.Errorf("value: unknown comparison operator %q", s)
}

package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, math.MaxInt64, math.MinInt64} {
		v := Int(n)
		if !v.IsInt() {
			t.Fatalf("Int(%d).IsInt() = false", n)
		}
		if got := v.Int64(); got != n {
			t.Fatalf("Int(%d).Int64() = %d", n, got)
		}
	}
}

func TestBool(t *testing.T) {
	if Bool(true) != Int(1) {
		t.Errorf("Bool(true) != Int(1)")
	}
	if Bool(false) != Int(0) {
		t.Errorf("Bool(false) != Int(0)")
	}
	if !Bool(true).Truth() || Bool(false).Truth() {
		t.Errorf("Truth embedding broken")
	}
	if !PosInf().Truth() || !NegInf().Truth() {
		t.Errorf("infinities must be truthy")
	}
}

func TestInfinityPredicates(t *testing.T) {
	if !PosInf().IsPosInf() || PosInf().IsNegInf() || PosInf().IsInt() {
		t.Errorf("PosInf predicates wrong")
	}
	if !NegInf().IsNegInf() || NegInf().IsPosInf() || NegInf().IsInt() {
		t.Errorf("NegInf predicates wrong")
	}
}

func TestInt64PanicsOnInfinity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Int64 on +inf did not panic")
		}
	}()
	_ = PosInf().Int64()
}

func TestCmpTotalOrder(t *testing.T) {
	order := []V{NegInf(), Int(math.MinInt64), Int(-5), Int(0), Int(7), Int(math.MaxInt64), PosInf()}
	for i, a := range order {
		for j, b := range order {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := a.Cmp(b); got != want {
				t.Errorf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
			}
			if got := a.Less(b); got != (want < 0) {
				t.Errorf("Less(%v, %v) = %v", a, b, got)
			}
		}
	}
}

func TestAdd(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Int(2), Int(3), Int(5)},
		{Int(-2), Int(3), Int(1)},
		{PosInf(), Int(3), PosInf()},
		{Int(3), PosInf(), PosInf()},
		{NegInf(), Int(3), NegInf()},
		{PosInf(), PosInf(), PosInf()},
		{NegInf(), NegInf(), NegInf()},
	}
	for _, c := range cases {
		if got := c.a.Add(c.b); got != c.want {
			t.Errorf("%v + %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAddOppositeInfinitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("+inf + -inf did not panic")
		}
	}()
	_ = PosInf().Add(NegInf())
}

func TestMul(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Int(2), Int(3), Int(6)},
		{Int(-2), Int(3), Int(-6)},
		{Int(0), PosInf(), Int(0)},
		{PosInf(), Int(0), Int(0)},
		{PosInf(), Int(2), PosInf()},
		{PosInf(), Int(-2), NegInf()},
		{NegInf(), Int(-2), PosInf()},
		{PosInf(), PosInf(), PosInf()},
		{PosInf(), NegInf(), NegInf()},
		{NegInf(), NegInf(), PosInf()},
	}
	for _, c := range cases {
		if got := c.a.Mul(c.b); got != c.want {
			t.Errorf("%v * %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if got := Int(3).Min(Int(5)); got != Int(3) {
		t.Errorf("Min = %v", got)
	}
	if got := Int(3).Max(Int(5)); got != Int(5) {
		t.Errorf("Max = %v", got)
	}
	if got := PosInf().Min(Int(5)); got != Int(5) {
		t.Errorf("Min with +inf = %v", got)
	}
	if got := NegInf().Max(Int(5)); got != Int(5) {
		t.Errorf("Max with -inf = %v", got)
	}
}

func TestFloat(t *testing.T) {
	if got := Int(4).Float(); got != 4 {
		t.Errorf("Float = %v", got)
	}
	if !math.IsInf(PosInf().Float(), 1) || !math.IsInf(NegInf().Float(), -1) {
		t.Errorf("infinite Float values wrong")
	}
}

func TestStringAndParse(t *testing.T) {
	for _, v := range []V{Int(0), Int(-3), Int(99), PosInf(), NegInf()} {
		got, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("Parse(String(%v)) = %v", v, got)
		}
	}
	if v, err := Parse("true"); err != nil || v != Int(1) {
		t.Errorf("Parse(true) = %v, %v", v, err)
	}
	if v, err := Parse("false"); err != nil || v != Int(0) {
		t.Errorf("Parse(false) = %v, %v", v, err)
	}
	if _, err := Parse("banana"); err == nil {
		t.Errorf("Parse(banana) should fail")
	}
}

func TestThetaApply(t *testing.T) {
	cases := []struct {
		th   Theta
		a, b V
		want bool
	}{
		{EQ, Int(3), Int(3), true},
		{EQ, Int(3), Int(4), false},
		{NE, Int(3), Int(4), true},
		{LE, Int(3), Int(3), true},
		{LE, Int(4), Int(3), false},
		{GE, Int(4), Int(3), true},
		{LT, Int(3), Int(4), true},
		{LT, Int(3), Int(3), false},
		{GT, Int(4), Int(3), true},
		{LE, NegInf(), Int(-100), true},
		{GE, PosInf(), Int(100), true},
		{LT, NegInf(), PosInf(), true},
	}
	for _, c := range cases {
		if got := c.th.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.th, c.b, got, c.want)
		}
	}
}

func TestThetaFlipNegate(t *testing.T) {
	thetas := []Theta{EQ, NE, LE, GE, LT, GT}
	vals := []V{NegInf(), Int(-2), Int(0), Int(2), PosInf()}
	for _, th := range thetas {
		for _, a := range vals {
			for _, b := range vals {
				if th.Apply(a, b) != th.Flip().Apply(b, a) {
					t.Errorf("Flip broken for %v on (%v,%v)", th, a, b)
				}
				if th.Apply(a, b) == th.Negate().Apply(a, b) {
					t.Errorf("Negate broken for %v on (%v,%v)", th, a, b)
				}
			}
		}
	}
}

func TestThetaParse(t *testing.T) {
	for _, th := range []Theta{EQ, NE, LE, GE, LT, GT} {
		got, err := ParseTheta(th.String())
		if err != nil || got != th {
			t.Errorf("ParseTheta(%q) = %v, %v", th.String(), got, err)
		}
	}
	if _, err := ParseTheta("~"); err == nil {
		t.Errorf("ParseTheta(~) should fail")
	}
}

// Property: Add and Mul on finite values agree with int64 arithmetic, and
// Cmp agrees with the integer order.
func TestFiniteArithmeticProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		if x.Add(y) != Int(int64(a)+int64(b)) {
			return false
		}
		if x.Mul(y) != Int(int64(a)*int64(b)) {
			return false
		}
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return x.Cmp(y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyNormalises(t *testing.T) {
	a := V{posInf, 7} // internally denormalised
	if a.Key() != PosInf() {
		t.Errorf("Key did not normalise infinity payload")
	}
	if Int(5).Key() != Int(5) {
		t.Errorf("Key changed finite value")
	}
}

package pvcagg

import (
	"context"

	"pvcagg/internal/engine"
	"pvcagg/internal/pvql"
	"pvcagg/internal/pvql/bind"
	"pvcagg/internal/pvql/opt"
)

// This file is the PVQL frontend: declarative queries compile through
// parse → bind → optimize into Q-algebra plans and execute through Exec,
// so every strategy option applies unchanged and Result.Strategy is
// driven by Classify on the *optimized* plan.

// QueryError is a positioned PVQL parse or semantic error: Pos and End
// are byte offsets into the query text, and Render formats the error
// with a caret under the offending span.
type QueryError = pvql.Error

// ParseQuery compiles a PVQL query against a database into an optimized
// Q-algebra plan. The syntax (see the package documentation's "Query
// language" section, or internal/pvql for the full EBNF):
//
//	SELECT shop FROM (
//	  SELECT shop, MAX(price) AS P FROM (
//	    SELECT shop, price FROM S JOIN PS JOIN (SELECT * FROM P1 UNION SELECT * FROM P2)
//	  ) GROUP BY shop
//	) WHERE P <= 50
//
// Errors are *QueryError values pointing at the offending byte span.
func ParseQuery(db *Database, query string) (Plan, error) {
	naive, err := parseQueryNaive(db, query)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(naive, db), nil
}

// parseQueryNaive is the rewrite-free lowering (parse + bind only),
// shared by ParseQuery and the optimizer's differential tests.
func parseQueryNaive(db *Database, query string) (Plan, error) {
	q, err := pvql.Parse(query)
	if err != nil {
		return nil, err
	}
	return bind.Bind(db, q)
}

// ParseQueryExplain is ParseQuery plus the query's EXPLAIN mode: the
// plan is the optimized plan of the query proper (the prefix never
// changes planning), and the mode says whether the caller asked for
// `EXPLAIN` (plan + estimates, no execution) or `EXPLAIN ANALYZE`
// (execute, report actuals next to estimates).
func ParseQueryExplain(db *Database, query string) (Plan, ExplainMode, error) {
	q, err := pvql.Parse(query)
	if err != nil {
		return nil, ExplainNone, err
	}
	naive, err := bind.Bind(db, q)
	if err != nil {
		return nil, ExplainNone, err
	}
	return opt.Optimize(naive, db), q.Explain, nil
}

// ExecQuery is Exec over PVQL text: it parses, binds and optimizes the
// query, then executes the plan under the configured strategy — all Exec
// options (modes, ε, parallelism, budgets, seeds, the shared cache)
// apply unchanged. Auto mode classifies the optimized plan.
//
//	res, err := pvcagg.ExecQuery(ctx, db, "SELECT a, COUNT(*) AS n FROM R GROUP BY a")
//	outs, err := res.Collect()
//
// A query prefixed `EXPLAIN` returns a Result with zero tuples whose
// Report.Explain holds the estimated plan tree (nothing executes); an
// `EXPLAIN ANALYZE` prefix executes normally and additionally fills
// Report.Explain with per-operator actual row counts. With WithTrace,
// the frontend stages record parse/bind/optimize spans.
func ExecQuery(ctx context.Context, db *Database, query string, opts ...Option) (*Result, error) {
	// WithStore resolves before the parse: binding needs the store's
	// table schemas. Exec re-resolves the same way (idempotent).
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if db, err = cfg.resolveDB(db); err != nil {
		return nil, err
	}
	tr := cfg.trace
	sp := tr.StartSpan("parse")
	q, err := pvql.Parse(query)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.StartSpan("bind")
	naive, err := bind.Bind(db, q)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.StartSpan("optimize")
	plan := opt.Optimize(naive, db)
	sp.End()
	switch q.Explain {
	case ExplainPlan:
		res := &Result{Rel: NewRelation("explain", nil), collected: true}
		res.Report.Explain = Explain(db, plan)
		res.Report.Trace = tr
		return res, nil
	case ExplainAnalyze:
		opts = append(opts[:len(opts):len(opts)], WithExplainAnalyze())
	}
	return Exec(ctx, db, plan, opts...)
}

// ParsePlan parses the algebra rendering produced by Plan.String back
// into a plan — the inverse of the renderer over its printable subset
// (identifier names, numeric and quoted-string constants).
func ParsePlan(s string) (Plan, error) { return pvql.ParsePlan(s) }

// EstimateCardinality estimates the number of result tuples of a plan —
// the cost signal the PVQL optimizer's greedy join reordering uses.
func EstimateCardinality(p Plan, db *Database) float64 {
	return engine.EstimateCardinality(p, db)
}

package pvcagg

import (
	"context"

	"pvcagg/internal/engine"
	"pvcagg/internal/pvql"
	"pvcagg/internal/pvql/bind"
	"pvcagg/internal/pvql/opt"
)

// This file is the PVQL frontend: declarative queries compile through
// parse → bind → optimize into Q-algebra plans and execute through Exec,
// so every strategy option applies unchanged and Result.Strategy is
// driven by Classify on the *optimized* plan.

// QueryError is a positioned PVQL parse or semantic error: Pos and End
// are byte offsets into the query text, and Render formats the error
// with a caret under the offending span.
type QueryError = pvql.Error

// ParseQuery compiles a PVQL query against a database into an optimized
// Q-algebra plan. The syntax (see the package documentation's "Query
// language" section, or internal/pvql for the full EBNF):
//
//	SELECT shop FROM (
//	  SELECT shop, MAX(price) AS P FROM (
//	    SELECT shop, price FROM S JOIN PS JOIN (SELECT * FROM P1 UNION SELECT * FROM P2)
//	  ) GROUP BY shop
//	) WHERE P <= 50
//
// Errors are *QueryError values pointing at the offending byte span.
func ParseQuery(db *Database, query string) (Plan, error) {
	naive, err := parseQueryNaive(db, query)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(naive, db), nil
}

// parseQueryNaive is the rewrite-free lowering (parse + bind only),
// shared by ParseQuery and the optimizer's differential tests.
func parseQueryNaive(db *Database, query string) (Plan, error) {
	q, err := pvql.Parse(query)
	if err != nil {
		return nil, err
	}
	return bind.Bind(db, q)
}

// ExecQuery is Exec over PVQL text: it parses, binds and optimizes the
// query, then executes the plan under the configured strategy — all Exec
// options (modes, ε, parallelism, budgets, seeds, the shared cache)
// apply unchanged. Auto mode classifies the optimized plan.
//
//	res, err := pvcagg.ExecQuery(ctx, db, "SELECT a, COUNT(*) AS n FROM R GROUP BY a")
//	outs, err := res.Collect()
func ExecQuery(ctx context.Context, db *Database, query string, opts ...Option) (*Result, error) {
	// WithStore resolves before the parse: binding needs the store's
	// table schemas. Exec re-resolves the same way (idempotent).
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if db, err = cfg.resolveDB(db); err != nil {
		return nil, err
	}
	plan, err := ParseQuery(db, query)
	if err != nil {
		return nil, err
	}
	return Exec(ctx, db, plan, opts...)
}

// ParsePlan parses the algebra rendering produced by Plan.String back
// into a plan — the inverse of the renderer over its printable subset
// (identifier names, numeric and quoted-string constants).
func ParsePlan(s string) (Plan, error) { return pvql.ParsePlan(s) }

// EstimateCardinality estimates the number of result tuples of a plan —
// the cost signal the PVQL optimizer's greedy join reordering uses.
func EstimateCardinality(p Plan, db *Database) float64 {
	return engine.EstimateCardinality(p, db)
}

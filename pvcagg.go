// Package pvcagg is a Go implementation of "Aggregation in Probabilistic
// Databases via Knowledge Compilation" (Fink, Han, Olteanu, PVLDB 5(5),
// 2012): pvc-tables as a representation system for probabilistic data with
// aggregates, positive relational algebra with grouping/aggregation whose
// results carry semiring and semimodule annotations, and exact probability
// computation by compiling annotations into decomposition trees.
//
// The package is a facade over the internal implementation; everything a
// downstream user needs is re-exported here:
//
//   - expression parsing and probability computation (ParseExpr,
//     NewPipeline, Distribution);
//   - pvc-databases and relations (NewDatabase, NewRelation, cells);
//   - query plans (Scan, Select, Project, Join, Union, GroupAgg) and
//     end-to-end evaluation (Run);
//   - the Qind/Qhie tractability analysis (Classify);
//   - the possible-worlds and Monte-Carlo baselines (Enumerate,
//     MonteCarlo) for validation.
//
// Quick start:
//
//	reg := pvcagg.NewRegistry()
//	reg.DeclareBool("x", 0.5)
//	reg.DeclareBool("y", 0.5)
//	p := pvcagg.NewPipeline(pvcagg.Boolean, reg)
//	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")
//	d, _, _ := p.Distribution(e)
//	fmt.Println(d) // {(0, 0.5), (1, 0.5)}
//
// # Parallel execution
//
// The compile→evaluate pipeline is embarrassingly parallel at the tuple
// level: every result tuple's annotation and aggregation expressions
// compile and evaluate independently, sharing only the read-only
// variable registry. RunParallel distributes the probability step of a
// query over a bounded worker pool (default runtime.GOMAXPROCS(0)), and
// when tuples are scarcer than workers the leftover parallelism moves
// inside each tuple's compilation, fanning the branches of Shannon
// expansions ⊔x out over a shared, mutex-striped memo table so the
// d-tree stays a DAG across goroutines. The decomposition rules and all
// heuristics are deterministic, so parallel runs return the same
// probabilities as sequential ones.
//
//	rel, results, timing, err := pvcagg.RunParallel(db, plan,
//		pvcagg.ParallelOptions{}) // Parallelism: 0 ⇒ GOMAXPROCS
//
// A single hard expression can likewise be compiled in parallel:
//
//	p := pvcagg.NewPipeline(pvcagg.Boolean, reg)
//	d, rep, err := p.DistributionParallel(e, 8) // at most 8 goroutines
//
// # Approximate computation
//
// Queries outside the tractable classes Qind/Qhie pay full Shannon
// expansion, which is exponential in the worst case. The anytime
// approximation engine makes such queries answerable with guarantees:
// instead of compiling a complete d-tree, it expands the decomposition
// incrementally, every uncompiled sub-expression contributing interval
// bounds [lo, hi] on its truth probability to its parent. A
// priority-driven frontier always expands the leaf contributing most to
// the root's bound width, and expansion stops as soon as the interval is
// within a user-given ε (or a node/time budget runs out). The returned
// interval always contains the exact probability, converged or not; ε = 0
// reproduces the exact value bit-for-bit through the exact pipeline.
//
//	b, rep, err := pvcagg.Approximate(e, reg, pvcagg.Boolean,
//		pvcagg.ApproxOptions{Eps: 0.01})
//	// b.Lo ≤ P[e ≠ 0] ≤ b.Hi and b.Hi − b.Lo ≤ 0.01 when rep.Converged
//
// Whole queries run end-to-end with per-tuple ε, the tuples fanned out
// over the same worker pool as RunParallel; aggregation-column
// distributions stay exact (the hardness of selections on aggregates
// lives in the annotations, which is what the anytime engine brackets):
//
//	rel, results, timing, err := pvcagg.RunApprox(db, plan,
//		pvcagg.ApproxOptions{Eps: 0.05}, pvcagg.ParallelOptions{})
//	// results[i].Confidence is a Bounds of width ≤ 0.05
package pvcagg

import (
	"math/rand"

	"pvcagg/internal/algebra"
	"pvcagg/internal/compile"
	"pvcagg/internal/core"
	"pvcagg/internal/engine"
	"pvcagg/internal/expr"
	"pvcagg/internal/gen"
	"pvcagg/internal/prob"
	"pvcagg/internal/pvc"
	"pvcagg/internal/tractable"
	"pvcagg/internal/value"
	"pvcagg/internal/vars"
	"pvcagg/internal/worlds"
)

// Carrier values and comparisons.
type (
	// V is a carrier value: an exact integer extended with ±∞.
	V = value.V
	// Theta is a comparison operator (=, ≠, ≤, ≥, <, >).
	Theta = value.Theta
)

// Value constructors and the six comparison operators.
var (
	Int    = value.Int
	BoolV  = value.Bool
	PosInf = value.PosInf
	NegInf = value.NegInf
)

// Comparison operators.
const (
	EQ = value.EQ
	NE = value.NE
	LE = value.LE
	GE = value.GE
	LT = value.LT
	GT = value.GT
)

// Algebraic structures.
type (
	// Agg names an aggregation monoid.
	Agg = algebra.Agg
	// SemiringKind selects the valuation semiring.
	SemiringKind = algebra.SemiringKind
)

// Aggregation monoids and semirings.
const (
	SUM   = algebra.Sum
	MIN   = algebra.Min
	MAX   = algebra.Max
	PROD  = algebra.Prod
	COUNT = algebra.Count

	Boolean = algebra.Boolean
	Natural = algebra.Natural
)

// Expressions.
type (
	// Expr is a semiring, semimodule or conditional expression.
	Expr = expr.Expr
	// Valuation assigns values to variables (one possible world).
	Valuation = expr.Valuation
)

// Expression constructors and utilities.
var (
	// ParseExpr parses the textual expression syntax, e.g.
	// "[min(x*y @min 5, z @min 10) <= 7]".
	ParseExpr = expr.Parse
	// MustParseExpr is ParseExpr for known-good literals.
	MustParseExpr = expr.MustParse
	// ExprString renders an expression canonically.
	ExprString = expr.String
	// Vars lists the variables of an expression.
	Vars = expr.Vars
)

// Probability distributions.
type (
	// Dist is a finite discrete probability distribution.
	Dist = prob.Dist
	// Pair is one (value, probability) entry of a Dist.
	Pair = prob.Pair
)

// Distribution constructors.
var (
	DistOf    = prob.FromPairs
	PointDist = prob.Point
	Bernoulli = prob.Bernoulli
)

// Registry is the set X of independent random variables with their
// distributions, inducing the probability space Ω.
type Registry = vars.Registry

// NewRegistry returns an empty variable registry.
func NewRegistry() *Registry { return vars.NewRegistry() }

// Pipeline compiles expressions to decomposition trees and computes exact
// probability distributions (the paper's Section 5).
type Pipeline = core.Pipeline

// Report describes compilation and evaluation cost of one computation.
type Report = core.Report

// CompileOptions configure d-tree compilation (ablations and budgets).
type CompileOptions = compile.Options

// NewPipeline returns a Pipeline over the given semiring and registry.
func NewPipeline(kind SemiringKind, reg *Registry) *Pipeline { return core.New(kind, reg) }

// pvc-tables.
type (
	// Database is a pvc-database: named pvc-tables over one probability
	// space.
	Database = pvc.Database
	// Relation is a pvc-table.
	Relation = pvc.Relation
	// Schema is an ordered list of columns.
	Schema = pvc.Schema
	// Col is a column declaration.
	Col = pvc.Col
	// Cell is one tuple value.
	Cell = pvc.Cell
	// Tuple is one annotated row.
	Tuple = pvc.Tuple
)

// Column types.
const (
	TValue  = pvc.TValue
	TString = pvc.TString
	TModule = pvc.TModule
)

// Cell constructors.
var (
	IntCell    = pvc.IntCell
	ValueCell  = pvc.ValueCell
	StringCell = pvc.StringCell
	ExprCell   = pvc.ExprCell
)

// NewDatabase returns an empty pvc-database over a fresh registry.
func NewDatabase(kind SemiringKind) *Database { return pvc.NewDatabase(kind) }

// NewRelation returns an empty pvc-table.
func NewRelation(name string, schema Schema) *Relation { return pvc.NewRelation(name, schema) }

// Query plans (the Q algebra of Definition 5).
type (
	Plan     = engine.Plan
	Scan     = engine.Scan
	Rename   = engine.Rename
	Select   = engine.Select
	Project  = engine.Project
	Product  = engine.Product
	Join     = engine.Join
	Union    = engine.Union
	GroupAgg = engine.GroupAgg
	AggSpec  = engine.AggSpec
	Pred     = engine.Pred
	// TupleResult is the probabilistic interpretation of a result tuple.
	TupleResult = engine.TupleResult
	// RunTiming separates expression construction from probability
	// computation.
	RunTiming = engine.RunTiming
)

// Predicate builders.
var (
	Where       = engine.Where
	ColEqCol    = engine.ColEqCol
	ColTheta    = engine.ColTheta
	ColThetaCol = engine.ColThetaCol
)

// Run evaluates a plan on a database and computes the probability of every
// result tuple.
func Run(db *Database, plan Plan) (*Relation, []TupleResult, RunTiming, error) {
	return engine.Run(db, plan, compile.Options{})
}

// RunWithOptions is Run with explicit compilation options.
func RunWithOptions(db *Database, plan Plan, opts CompileOptions) (*Relation, []TupleResult, RunTiming, error) {
	return engine.Run(db, plan, opts)
}

// ParallelOptions configure batched parallel probability computation
// (see the "Parallel execution" package-doc section).
type ParallelOptions = engine.ParallelOptions

// RunParallel is Run with the probability step distributed over a
// bounded worker pool. Results are identical to Run's; failing tuples
// are all reported, joined into one error.
func RunParallel(db *Database, plan Plan, par ParallelOptions) (*Relation, []TupleResult, RunTiming, error) {
	return engine.RunParallel(db, plan, compile.Options{}, par)
}

// RunParallelWithOptions is RunParallel with explicit compilation
// options.
func RunParallelWithOptions(db *Database, plan Plan, opts CompileOptions, par ParallelOptions) (*Relation, []TupleResult, RunTiming, error) {
	return engine.RunParallel(db, plan, opts, par)
}

// ProbabilitiesParallel computes the probability of every tuple of an
// already-evaluated pvc-table with the given parallelism.
func ProbabilitiesParallel(db *Database, rel *Relation, opts CompileOptions, par ParallelOptions) ([]TupleResult, error) {
	return engine.ProbabilitiesParallel(db, rel, opts, par)
}

// Anytime approximation (see the "Approximate computation" package-doc
// section).
type (
	// Bounds is an interval [Lo, Hi] guaranteed to contain the exact
	// probability.
	Bounds = compile.Bounds
	// ApproxOptions configure anytime approximation: the target width
	// Eps plus node/expansion/time budgets.
	ApproxOptions = compile.ApproxOptions
	// ApproxReport describes one anytime computation (bounds,
	// convergence, expansion and node counts).
	ApproxReport = compile.ApproxReport
	// ApproxTupleResult brackets one result tuple's confidence.
	ApproxTupleResult = engine.ApproxTupleResult
)

// Approximate computes guaranteed bounds on the probability that the
// semiring expression e is non-zero, by anytime partial d-tree expansion.
// The returned interval always contains the exact probability; its width
// is at most opts.Eps when the report's Converged flag is set.
func Approximate(e Expr, reg *Registry, kind SemiringKind, opts ApproxOptions) (Bounds, ApproxReport, error) {
	return compile.Approximate(algebra.SemiringFor(kind), reg, e, opts)
}

// RunApprox evaluates a plan and brackets every result tuple's confidence
// within opts.Eps (budgets permitting), distributing tuples over a bounded
// worker pool. Aggregation-column distributions are computed exactly.
func RunApprox(db *Database, plan Plan, opts ApproxOptions, par ParallelOptions) (*Relation, []ApproxTupleResult, RunTiming, error) {
	return engine.RunApprox(db, plan, opts, par)
}

// ProbabilitiesApprox brackets the confidence of every tuple of an
// already-evaluated pvc-table within opts.Eps.
func ProbabilitiesApprox(db *Database, rel *Relation, opts ApproxOptions, par ParallelOptions) ([]ApproxTupleResult, error) {
	return engine.ProbabilitiesApprox(db, rel, opts, par)
}

// Tractability analysis (Section 6).
type (
	// Verdict is a tractability classification with its reason.
	Verdict = tractable.Verdict
	// Class is Qind, Qhie or hard.
	Class = tractable.Class
)

// Tractability classes.
const (
	Hard = tractable.Hard
	Qind = tractable.Ind
	Qhie = tractable.Hie
)

// Classify analyses a plan per Definitions 8/9.
func Classify(p Plan, db *Database) Verdict { return tractable.Classify(p, db) }

// AVG composition (paper Section 2.2: AVG is composed from SUM and COUNT
// via the joint distribution).
type (
	// AvgDist is the exact distribution of an average.
	AvgDist = core.AvgDist
	// Ratio is an exact rational average outcome.
	Ratio = core.Ratio
)

// Baselines.

// Enumerate computes an exact distribution by possible-worlds enumeration
// (exponential; for validation on small inputs).
func Enumerate(e Expr, reg *Registry, kind SemiringKind) (Dist, error) {
	return worlds.Enumerate(e, reg, algebra.SemiringFor(kind))
}

// MonteCarlo estimates a distribution from n sampled worlds. Sampling is
// driven by an explicitly seeded rand.Rand, so any estimate is
// reproducible from the logged seed.
func MonteCarlo(e Expr, reg *Registry, kind SemiringKind, n int, seed int64) (Dist, error) {
	return worlds.MonteCarlo(e, reg, algebra.SemiringFor(kind), n, rand.New(rand.NewSource(seed)))
}

// Random expression generation (the paper's Section 7.1 workload).
type (
	// GenParams parameterise the random conditional-expression generator.
	GenParams = gen.Params
	// GenInstance is one generated expression with its registry.
	GenInstance = gen.Instance
)

// Generate builds one random conditional expression per Eq. (11).
func Generate(p GenParams) (GenInstance, error) { return gen.New(p) }

// Package pvcagg is a Go implementation of "Aggregation in Probabilistic
// Databases via Knowledge Compilation" (Fink, Han, Olteanu, PVLDB 5(5),
// 2012): pvc-tables as a representation system for probabilistic data with
// aggregates, positive relational algebra with grouping/aggregation whose
// results carry semiring and semimodule annotations, and exact probability
// computation by compiling annotations into decomposition trees.
//
// The package is a facade over the internal implementation; everything a
// downstream user needs is re-exported here:
//
//   - expression parsing and probability computation (ParseExpr,
//     ExecExpr, NewPipeline);
//   - pvc-databases and relations (NewDatabase, NewRelation, cells);
//   - query plans (Scan, Select, Project, Join, Union, GroupAgg) and
//     end-to-end evaluation (Exec);
//   - the Qind/Qhie tractability analysis (Classify);
//   - the possible-worlds and Monte-Carlo baselines (Enumerate,
//     MonteCarlo) for validation.
//
// Quick start:
//
//	reg := pvcagg.NewRegistry()
//	reg.DeclareBool("x", 0.5)
//	reg.DeclareBool("y", 0.5)
//	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")
//	res, _ := pvcagg.ExecExpr(context.Background(), e, reg, pvcagg.Boolean)
//	fmt.Println(res.Dist) // {(0, 0.5), (1, 0.5)}
//
// # Executing queries
//
// Exec is the one entrypoint for query evaluation: it evaluates a plan,
// then computes the probabilistic interpretation of every result tuple
// under a strategy selected by functional options, returning one unified
// Result whose per-tuple Confidence is always an interval (exact runs
// yield zero-width intervals):
//
//	res, err := pvcagg.Exec(ctx, db, plan)           // adaptive (Auto)
//	outs, err := res.Collect()                       // all tuples, in order
//
// Three strategies cover the paper's whole difficulty spectrum, plus the
// adaptive default:
//
//   - WithMode(Exact): full d-tree compilation (Section 5), exponential
//     on hard queries; bound it with WithCompileBudget. The probability
//     step is distributed over a bounded worker pool (WithParallelism,
//     default GOMAXPROCS); when tuples are scarcer than workers the
//     leftover parallelism moves inside each tuple's compilation,
//     fanning Shannon branches over a shared memo table. All heuristics
//     are deterministic, so results are bit-for-bit identical at every
//     parallelism.
//   - WithMode(Anytime): guaranteed confidence bounds of width ≤ ε
//     (WithEps, default DefaultEps) by priority-driven partial
//     expansion; aggregation-column distributions stay exact. Budgets
//     (WithApprox) return sound, unconverged bounds on exhaustion.
//   - WithMode(Sample): explicitly-seeded Monte Carlo estimation
//     (WithSeed, required; WithSamples) with 95% Hoeffding intervals —
//     the baseline strategy.
//   - WithMode(Auto), the default: the Section 6 tractability analysis
//     (Classify) routes each plan — tractable plans (Qind/Qhie) run
//     exactly, hard plans run on the anytime engine — and the verdict is
//     recorded in Result.Strategy.
//
// Execution is context-aware end to end: every compilation polls ctx at
// expansion steps, so cancelling the context (or WithTimeout) aborts even
// a runaway Shannon expansion promptly:
//
//	ctx, cancel := context.WithCancel(context.Background())
//	res, err := pvcagg.Exec(ctx, db, plan, pvcagg.WithMode(pvcagg.Exact))
//	// cancel() from another goroutine → Collect returns ctx.Err()
//
// Large workloads can consume tuples as workers finish instead of after a
// barrier, via the streaming iterator:
//
//	for out, err := range res.Results() {
//		// out.Index identifies the tuple; completion order
//	}
//
// Bare expressions run through ExecExpr and already-evaluated pvc-tables
// through ExecTable, with the same options.
//
// # Execution model
//
// Step I — evaluating the plan into the annotated answer relation — has
// two physical paths selected by WithEvalPath and recorded in
// Result.Strategy.EvalPath:
//
//   - StreamingEval (the default): a pull-iterator pipeline. Scans are
//     lazy, selections/renames/prunes pipeline tuple-at-a-time, joins
//     and products hash only their build side (pre-sized from the
//     cardinality estimator), filters over joins fuse into the pair
//     iterator so rejected pairs never allocate, and the
//     duplicate-eliminating operators group incrementally.
//   - MaterializedEval: the original recursion that materialises every
//     operator's full output before its parent runs.
//
// Both paths produce bit-for-bit identical relations — same tuples,
// same annotation expression trees — so probabilities agree exactly;
// the differential suites hold them to tolerance 0 on every optimizer
// template and on the pinned paper goldens.
//
// # Query language
//
// PVQL is the declarative frontend over the Q-algebra: ExecQuery parses
// a small SQL-like language (SELECT/FROM/WHERE/GROUP BY with the
// paper's aggregation monoids as functions, JOIN/","/UNION for ⋈/×/∪,
// AS for δ, sub-queries for nesting), binds it against the database
// schema with byte-positioned errors (*QueryError), rewrites the plan
// through a logical optimizer — predicate pushdown, Product+Select→Join
// fusion, greedy join reordering by estimated cardinality, and
// collapse-free projection pruning (the π̂ Prune operator) — and then
// executes it through Exec, so every option applies and Auto classifies
// the optimized plan:
//
//	res, err := pvcagg.ExecQuery(ctx, db, `
//	  SELECT shop FROM (
//	    SELECT shop, MAX(price) AS P FROM (
//	      SELECT shop, price FROM S JOIN PS JOIN (SELECT * FROM P1 UNION SELECT * FROM P2)
//	    ) GROUP BY shop
//	  ) WHERE P <= 50`)
//
// WHERE comparisons over aggregation columns are the paper's σ over
// semimodule values; AVG lowers to the joint (SUM, COUNT) pair of
// Section 2.2. ParseQuery compiles without executing; ParsePlan inverts
// Plan.String over its printable subset. The README's "Query language"
// section has the full grammar (EBNF), worked examples for all three
// strategies, and the optimizer's rewrite list with its differential
// guarantees.
//
// The pre-Exec entry points (Run, RunWithOptions, RunParallel,
// RunParallelWithOptions, RunApprox, ProbabilitiesParallel,
// ProbabilitiesApprox, Approximate) remain as deprecated wrappers that
// delegate to Exec; see the README for the migration table.
//
// # Performance
//
// The probability pipeline is built for constant-factor speed without
// changing semantics: variable names intern into dense IDs
// (slice-indexed registry, ID-based Shannon substitution), the compilers
// memoise sub-expressions on cached structural hashes rather than
// canonical strings, and the distribution kernels exploit the
// value-sorted representation (dense-window convolution, k-way-merge
// mixtures, prefix-mass comparisons in O(|a|+|b|)). Two knobs matter to
// callers:
//
//   - CompileOptions.DisableMemo ablates sub-expression memoisation
//     (and with it the structural-hash machinery) inside one compile.
//   - WithSharedCache(true) adds a cross-tuple cache shared by the whole
//     execution: a bounded, shard-striped table of compiled d-tree nodes
//     and their distributions keyed by structural hash, so tuples that
//     repeat sub-expressions compile and evaluate them once. Hit/miss
//     counters surface in Result.Report.SharedCache. It is off by
//     default so per-tuple cost reports describe each tuple's own work.
//
// Memoisation, interning and the shared cache are exact (bit-for-bit);
// of the kernels, Convolve/Map/Mixture accumulate in the reference
// kernels' exact order while CmpConvolve regroups its summation and may
// differ from the historical implementation in the final ulp.
//
// The README's "Performance" section describes the design; BENCH_exec.json
// records the measured trajectory across PRs.
//
// # Observability
//
// Every stage is instrumented, at zero cost when unused: WithTrace
// records a span tree (parse → bind → optimize → exec{eval,
// probability}) with wall time, allocation deltas and stage counters;
// WithExplainAnalyze — or a PVQL `EXPLAIN [ANALYZE]` prefix — returns
// the plan tree with estimated vs. actual per-operator row counts in
// ExecReport.Explain; and the internal/server service exports
// Prometheus metrics on /metrics with opt-in pprof. The README's
// "Observability" section has the trace anatomy, the metric series, an
// EXPLAIN ANALYZE walkthrough, and how to attach a profiler to pvcd.
package pvcagg

import (
	"math/rand"

	"pvcagg/internal/algebra"
	"pvcagg/internal/compile"
	"pvcagg/internal/core"
	"pvcagg/internal/engine"
	"pvcagg/internal/expr"
	"pvcagg/internal/gen"
	"pvcagg/internal/prob"
	"pvcagg/internal/pvc"
	"pvcagg/internal/tractable"
	"pvcagg/internal/value"
	"pvcagg/internal/vars"
	"pvcagg/internal/worlds"
)

// Carrier values and comparisons.
type (
	// V is a carrier value: an exact integer extended with ±∞.
	V = value.V
	// Theta is a comparison operator (=, ≠, ≤, ≥, <, >).
	Theta = value.Theta
)

// Value constructors and the six comparison operators.
var (
	Int    = value.Int
	BoolV  = value.Bool
	PosInf = value.PosInf
	NegInf = value.NegInf
)

// Comparison operators.
const (
	EQ = value.EQ
	NE = value.NE
	LE = value.LE
	GE = value.GE
	LT = value.LT
	GT = value.GT
)

// Algebraic structures.
type (
	// Agg names an aggregation monoid.
	Agg = algebra.Agg
	// SemiringKind selects the valuation semiring.
	SemiringKind = algebra.SemiringKind
)

// Aggregation monoids and semirings.
const (
	SUM   = algebra.Sum
	MIN   = algebra.Min
	MAX   = algebra.Max
	PROD  = algebra.Prod
	COUNT = algebra.Count

	Boolean = algebra.Boolean
	Natural = algebra.Natural
)

// Expressions.
type (
	// Expr is a semiring, semimodule or conditional expression.
	Expr = expr.Expr
	// Valuation assigns values to variables (one possible world).
	Valuation = expr.Valuation
)

// Expression constructors and utilities.
var (
	// ParseExpr parses the textual expression syntax, e.g.
	// "[min(x*y @min 5, z @min 10) <= 7]".
	ParseExpr = expr.Parse
	// MustParseExpr is ParseExpr for known-good literals.
	MustParseExpr = expr.MustParse
	// ExprString renders an expression canonically.
	ExprString = expr.String
	// Vars lists the variables of an expression.
	Vars = expr.Vars
)

// Probability distributions.
type (
	// Dist is a finite discrete probability distribution.
	Dist = prob.Dist
	// Pair is one (value, probability) entry of a Dist.
	Pair = prob.Pair
)

// Distribution constructors.
var (
	DistOf    = prob.FromPairs
	PointDist = prob.Point
	Bernoulli = prob.Bernoulli
)

// Registry is the set X of independent random variables with their
// distributions, inducing the probability space Ω.
type Registry = vars.Registry

// NewRegistry returns an empty variable registry.
func NewRegistry() *Registry { return vars.NewRegistry() }

// Pipeline compiles expressions to decomposition trees and computes exact
// probability distributions (the paper's Section 5).
type Pipeline = core.Pipeline

// Report describes compilation and evaluation cost of one computation.
type Report = core.Report

// CompileOptions configure d-tree compilation (ablations and budgets).
type CompileOptions = compile.Options

// NewPipeline returns a Pipeline over the given semiring and registry.
func NewPipeline(kind SemiringKind, reg *Registry) *Pipeline { return core.New(kind, reg) }

// pvc-tables.
type (
	// Database is a pvc-database: named pvc-tables over one probability
	// space.
	Database = pvc.Database
	// Relation is a pvc-table.
	Relation = pvc.Relation
	// Schema is an ordered list of columns.
	Schema = pvc.Schema
	// Col is a column declaration.
	Col = pvc.Col
	// Cell is one tuple value.
	Cell = pvc.Cell
	// Tuple is one annotated row.
	Tuple = pvc.Tuple
)

// Column types.
const (
	TValue  = pvc.TValue
	TString = pvc.TString
	TModule = pvc.TModule
)

// Cell constructors.
var (
	IntCell    = pvc.IntCell
	ValueCell  = pvc.ValueCell
	StringCell = pvc.StringCell
	ExprCell   = pvc.ExprCell
)

// NewDatabase returns an empty pvc-database over a fresh registry.
func NewDatabase(kind SemiringKind) *Database { return pvc.NewDatabase(kind) }

// NewRelation returns an empty pvc-table.
func NewRelation(name string, schema Schema) *Relation { return pvc.NewRelation(name, schema) }

// Query plans (the Q algebra of Definition 5).
type (
	Plan    = engine.Plan
	Scan    = engine.Scan
	Rename  = engine.Rename
	Select  = engine.Select
	Project = engine.Project
	// Prune is the optimizer's π̂: column pruning without duplicate
	// collapse (annotations untouched).
	Prune    = engine.Prune
	Product  = engine.Product
	Join     = engine.Join
	Union    = engine.Union
	GroupAgg = engine.GroupAgg
	AggSpec  = engine.AggSpec
	Pred     = engine.Pred
	// TupleResult is the probabilistic interpretation of a result tuple.
	TupleResult = engine.TupleResult
	// RunTiming separates expression construction from probability
	// computation.
	RunTiming = engine.RunTiming
)

// Predicate builders.
var (
	Where       = engine.Where
	ColEqCol    = engine.ColEqCol
	ColTheta    = engine.ColTheta
	ColThetaCol = engine.ColThetaCol
)

// Anytime approximation (see the "Executing queries" package-doc
// section).
type (
	// Bounds is an interval [Lo, Hi] guaranteed to contain the exact
	// probability.
	Bounds = compile.Bounds
	// ApproxOptions configure anytime approximation: the target width
	// Eps plus node/expansion/time budgets.
	ApproxOptions = compile.ApproxOptions
	// ApproxReport describes one anytime computation (bounds,
	// convergence, expansion and node counts).
	ApproxReport = compile.ApproxReport
	// ApproxTupleResult brackets one result tuple's confidence.
	ApproxTupleResult = engine.ApproxTupleResult
)

// Tractability analysis (Section 6).
type (
	// Verdict is a tractability classification with its reason.
	Verdict = tractable.Verdict
	// Class is Qind, Qhie or hard.
	Class = tractable.Class
)

// Tractability classes.
const (
	Hard = tractable.Hard
	Qind = tractable.Ind
	Qhie = tractable.Hie
)

// Classify analyses a plan per Definitions 8/9.
func Classify(p Plan, db *Database) Verdict { return tractable.Classify(p, db) }

// AVG composition (paper Section 2.2: AVG is composed from SUM and COUNT
// via the joint distribution).
type (
	// AvgDist is the exact distribution of an average.
	AvgDist = core.AvgDist
	// Ratio is an exact rational average outcome.
	Ratio = core.Ratio
)

// Baselines.

// Enumerate computes an exact distribution by possible-worlds enumeration
// (exponential; for validation on small inputs).
func Enumerate(e Expr, reg *Registry, kind SemiringKind) (Dist, error) {
	return worlds.Enumerate(e, reg, algebra.SemiringFor(kind))
}

// MonteCarlo estimates a distribution from n sampled worlds. Sampling is
// driven by an explicitly seeded rand.Rand, so any estimate is
// reproducible from the logged seed.
func MonteCarlo(e Expr, reg *Registry, kind SemiringKind, n int, seed int64) (Dist, error) {
	return worlds.MonteCarlo(e, reg, algebra.SemiringFor(kind), n, rand.New(rand.NewSource(seed)))
}

// Random expression generation (the paper's Section 7.1 workload).
type (
	// GenParams parameterise the random conditional-expression generator.
	GenParams = gen.Params
	// GenInstance is one generated expression with its registry.
	GenInstance = gen.Instance
)

// Generate builds one random conditional expression per Eq. (11).
func Generate(p GenParams) (GenInstance, error) { return gen.New(p) }

package pvcagg_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pvcagg"
	"pvcagg/internal/server"
	"pvcagg/internal/store"
	"pvcagg/internal/tpch"
)

// mirrorToStore writes every relation of an in-memory database into a
// fresh store, sharing the database's variable registry, and opens it.
func mirrorToStore(t *testing.T, db *pvcagg.Database, capacity int) *pvcagg.Store {
	t.Helper()
	dir := t.TempDir()
	w, err := store.Create(dir, db.Kind, db.Registry, store.Options{BlockCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Names() {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		tw, err := w.CreateTable(name, rel.Schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range rel.Tuples {
			if err := tw.Append(tup.Ann, tup.Cells...); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := pvcagg.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// outcomeKey renders one answer tuple with its confidence and aggregate
// expectations, for order-insensitive comparison.
func collectKeys(t *testing.T, res *pvcagg.Result) map[string]int {
	t.Helper()
	outs, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]int{}
	for _, o := range outs {
		key := fmt.Sprintf("%v lo=%.9g hi=%.9g", o.Tuple.Cells, o.Confidence.Lo, o.Confidence.Hi)
		for _, d := range o.AggDists {
			key += fmt.Sprintf(" E=%.9g", d.Expectation())
		}
		keys[key]++
	}
	return keys
}

// TestStoreMatchesInMemory is the storage differential: the same tuples
// queried through the in-memory path and through disk-backed block scans
// (with selection pushdown and block skipping active) must produce
// identical answers and identical probabilities.
func TestStoreMatchesInMemory(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.002, Seed: 7, Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	st := mirrorToStore(t, db, 64) // small blocks: many skip decisions
	queries := []string{
		"SELECT l_returnflag, l_linestatus, COUNT(*) AS n FROM lineitem WHERE l_shipdate <= 1200 GROUP BY l_returnflag, l_linestatus",
		"SELECT l_returnflag, COUNT(*) AS n FROM lineitem WHERE l_shipdate <= 100 GROUP BY l_returnflag",
		"SELECT o_orderkey, o_orderdate FROM orders WHERE o_orderkey = 17",
		"SELECT n_name, COUNT(*) AS suppliers FROM nation, supplier WHERE n_nationkey = s_nationkey GROUP BY n_name",
		"SELECT s_name FROM supplier WHERE s_suppkey <= 3",
		"SELECT p_mfgr, MAX(p_size) AS biggest FROM part GROUP BY p_mfgr",
	}
	for _, q := range queries {
		memRes, err := pvcagg.ExecQuery(context.Background(), db, q)
		if err != nil {
			t.Fatalf("%s (memory): %v", q, err)
		}
		stRes, err := pvcagg.ExecQuery(context.Background(), nil, q, pvcagg.WithStore(st))
		if err != nil {
			t.Fatalf("%s (store): %v", q, err)
		}
		mem, disk := collectKeys(t, memRes), collectKeys(t, stRes)
		if len(mem) != len(disk) {
			t.Fatalf("%s: %d answers in memory, %d from store", q, len(mem), len(disk))
		}
		for k, n := range mem {
			if disk[k] != n {
				t.Errorf("%s: answer %s ×%d in memory, ×%d from store", q, k, n, disk[k])
			}
		}
	}
	if m := st.Metrics(); m.BlocksSkipped == 0 {
		t.Errorf("differential ran without ever skipping a block: %+v", m)
	}
}

// TestStoreStatsPinJoinOrder is the estimator differential: the
// optimizer must pick the same join order whether base-table statistics
// come from exact in-memory scans or from the store's persisted stats
// (row counts are exact; KMV distinct sketches are exact below the
// sketch size, which these tables are).
func TestStoreStatsPinJoinOrder(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := mirrorToStore(t, db, 64)
	queries := []string{
		"SELECT s_name, n_name, r_name FROM supplier, nation, region WHERE s_nationkey = n_nationkey AND n_regionkey = r_regionkey",
		"SELECT n_name, COUNT(*) AS cnt FROM customer, nation, orders WHERE c_nationkey = n_nationkey AND o_custkey = c_custkey GROUP BY n_name",
		"SELECT p_mfgr FROM part, partsupp, supplier WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey AND p_size <= 5",
	}
	for _, q := range queries {
		memPlan, err := pvcagg.ParseQuery(db, q)
		if err != nil {
			t.Fatalf("%s (memory): %v", q, err)
		}
		stPlan, err := pvcagg.ParseQuery(st.DB(), q)
		if err != nil {
			t.Fatalf("%s (store): %v", q, err)
		}
		if memPlan.String() != stPlan.String() {
			t.Errorf("%s:\n  memory plan: %s\n  store plan:  %s", q, memPlan, stPlan)
		}
	}
}

// TestStoreServerE2E drives the full stack — pvcimport-shaped streaming
// ingest, OpenStore, the HTTP query service — at TPC-H SF 0.01. CI's
// storage job runs it; -short skips the heavyweight ingest.
func TestStoreServerE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("SF 0.01 end-to-end ingest skipped in -short mode")
	}
	dir := t.TempDir()
	reg := pvcagg.NewRegistry()
	w, err := store.Create(dir, pvcagg.Boolean, reg, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tw *store.TableWriter
	if err := tpch.Stream(tpch.Config{SF: 0.01, Seed: 1, Probabilistic: true}, reg, storeSink{w, &tw}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := pvcagg.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(st.DB(), server.Config{Workers: 2}).Handler())
	defer srv.Close()
	body, _ := json.Marshal(map[string]any{
		"query": "SELECT l_returnflag, l_linestatus, COUNT(*) AS count_order FROM lineitem WHERE l_shipdate <= 1200 GROUP BY l_returnflag, l_linestatus",
	})
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Rows []struct {
			Cells []string `json:"cells"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Three return flags × two line statuses.
	if len(out.Rows) != 6 {
		t.Fatalf("got %d answer rows, want 6", len(out.Rows))
	}
	if m := st.Metrics(); m.BlocksSkipped == 0 || m.BlocksRead == 0 {
		t.Errorf("server query did not exercise block skipping: %+v", m)
	}
}

type storeSink struct {
	w  *store.Writer
	tw **store.TableWriter
}

func (s storeSink) Table(name string, schema pvcagg.Schema) error {
	tw, err := s.w.CreateTable(name, schema)
	*s.tw = tw
	return err
}

func (s storeSink) Row(ann pvcagg.Expr, cells ...pvcagg.Cell) error {
	return (*s.tw).Append(ann, cells...)
}

package pvcagg_test

import (
	"context"
	"strings"
	"testing"

	"pvcagg"
)

// These tests pin the deprecation contract: every legacy entrypoint is a
// thin wrapper that delegates to Exec/ExecTable/ExecExpr, so its output
// must be bit-for-bit identical to calling the unified API with the
// equivalent options — same tuples, same confidences (float equality, no
// tolerance), same aggregation distributions, same deterministic report
// counters.

// assertSameExact compares a legacy exact result slice against unified
// outcomes, bit for bit.
func assertSameExact(t *testing.T, label string, legacy []pvcagg.TupleResult, outs []pvcagg.TupleOutcome) {
	t.Helper()
	if len(legacy) != len(outs) {
		t.Fatalf("%s: %d legacy results, %d Exec outcomes", label, len(legacy), len(outs))
	}
	for i := range outs {
		l, o := legacy[i], outs[i]
		if l.Tuple.Key() != o.Tuple.Key() {
			t.Errorf("%s tuple %d: key %q != %q", label, i, l.Tuple.Key(), o.Tuple.Key())
		}
		if l.Confidence != o.Confidence.Lo || o.Confidence.Width() != 0 {
			t.Errorf("%s tuple %d: confidence %v != %v", label, i, l.Confidence, o.Confidence)
		}
		if len(l.AggDists) != len(o.AggDists) {
			t.Fatalf("%s tuple %d: %d agg dists != %d", label, i, len(l.AggDists), len(o.AggDists))
		}
		for j := range l.AggDists {
			if !l.AggDists[j].Equal(o.AggDists[j], 0) {
				t.Errorf("%s tuple %d agg %d: %v != %v", label, i, j, l.AggDists[j], o.AggDists[j])
			}
		}
		if l.Report.Compile.Nodes != o.Report.Exact.Compile.Nodes ||
			l.Report.Eval.NodeEvals != o.Report.Exact.Eval.NodeEvals ||
			l.Report.Eval.MaxDistSize != o.Report.Exact.Eval.MaxDistSize {
			t.Errorf("%s tuple %d: report counters differ: %+v vs %+v", label, i, l.Report, o.Report.Exact)
		}
	}
}

// assertSameApprox compares a legacy anytime result slice against unified
// outcomes, bit for bit including the anytime report counters.
func assertSameApprox(t *testing.T, label string, legacy []pvcagg.ApproxTupleResult, outs []pvcagg.TupleOutcome) {
	t.Helper()
	if len(legacy) != len(outs) {
		t.Fatalf("%s: %d legacy results, %d Exec outcomes", label, len(legacy), len(outs))
	}
	for i := range outs {
		l, o := legacy[i], outs[i]
		if l.Tuple.Key() != o.Tuple.Key() {
			t.Errorf("%s tuple %d: key %q != %q", label, i, l.Tuple.Key(), o.Tuple.Key())
		}
		if l.Confidence != o.Confidence {
			t.Errorf("%s tuple %d: bounds %v != %v", label, i, l.Confidence, o.Confidence)
		}
		for j := range l.AggDists {
			if !l.AggDists[j].Equal(o.AggDists[j], 0) {
				t.Errorf("%s tuple %d agg %d: %v != %v", label, i, j, l.AggDists[j], o.AggDists[j])
			}
		}
		if o.Report.Approx == nil {
			t.Fatalf("%s tuple %d: Exec outcome has no anytime report", label, i)
		}
		if l.Report.Expansions != o.Report.Approx.Expansions ||
			l.Report.TreeNodes != o.Report.Approx.TreeNodes ||
			l.Report.ExactNodes != o.Report.Approx.ExactNodes ||
			l.Report.Converged != o.Report.Approx.Converged {
			t.Errorf("%s tuple %d: anytime report differs: %+v vs %+v", label, i, l.Report, *o.Report.Approx)
		}
	}
}

// TestDeprecatedExactDelegation: Run, RunWithOptions, RunParallel and
// RunParallelWithOptions all reproduce Exec's exact output.
func TestDeprecatedExactDelegation(t *testing.T) {
	db, plan := execTestDB(t)
	opts := pvcagg.CompileOptions{MaxNodes: 1 << 20}

	_, seq := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1))
	_, seqOpts := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1), pvcagg.WithCompileOptions(opts))
	_, par := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(4))

	if _, legacy, _, err := pvcagg.Run(db, plan); err != nil {
		t.Fatal(err)
	} else {
		assertSameExact(t, "Run", legacy, seq)
	}
	if _, legacy, _, err := pvcagg.RunWithOptions(db, plan, opts); err != nil {
		t.Fatal(err)
	} else {
		assertSameExact(t, "RunWithOptions", legacy, seqOpts)
	}
	if _, legacy, _, err := pvcagg.RunParallel(db, plan, pvcagg.ParallelOptions{Parallelism: 4}); err != nil {
		t.Fatal(err)
	} else {
		assertSameExact(t, "RunParallel", legacy, par)
	}
	if _, legacy, _, err := pvcagg.RunParallelWithOptions(db, plan, opts, pvcagg.ParallelOptions{Parallelism: 4}); err != nil {
		t.Fatal(err)
	} else {
		assertSameExact(t, "RunParallelWithOptions", legacy, par)
	}

	// Table-level delegation.
	res, err := pvcagg.Exec(context.Background(), db, plan, pvcagg.WithMode(pvcagg.Exact))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := pvcagg.ProbabilitiesParallel(db, res.Rel, pvcagg.CompileOptions{}, pvcagg.ParallelOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameExact(t, "ProbabilitiesParallel", legacy, seq)
}

// TestDeprecatedApproxDelegation: RunApprox and ProbabilitiesApprox
// reproduce Exec's anytime output, including ε = 0's exact fallback.
func TestDeprecatedApproxDelegation(t *testing.T) {
	db, plan := hardTestDB(t)
	for _, eps := range []float64{0, 0.05} {
		aopts := pvcagg.ApproxOptions{Eps: eps, MaxLeafNodes: 8}
		_, want := collect(t, db, plan, pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithApprox(aopts), pvcagg.WithParallelism(2))

		_, legacy, _, err := pvcagg.RunApprox(db, plan, aopts, pvcagg.ParallelOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		assertSameApprox(t, "RunApprox", legacy, want)

		res, err := pvcagg.Exec(context.Background(), db, plan, pvcagg.WithMode(pvcagg.Exact))
		if err != nil {
			t.Fatal(err)
		}
		lp, err := pvcagg.ProbabilitiesApprox(db, res.Rel, aopts, pvcagg.ParallelOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		assertSameApprox(t, "ProbabilitiesApprox", lp, want)
	}
}

// TestDeprecatedRunFailFast: the sequential legacy wrappers keep their
// historical error contract — the first failing tuple's error alone, not
// the pooled runner's joined "N of M tuples failed" aggregate.
func TestDeprecatedRunFailFast(t *testing.T) {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	r := pvcagg.NewRelation("bad", pvcagg.Schema{{Name: "a", Type: pvcagg.TValue}})
	db.Registry.DeclareBool("x", 0.5)
	r.MustInsert(pvcagg.MustParseExpr("x"), pvcagg.IntCell(1))
	// An undeclared variable makes this tuple fail at probability time.
	r.Tuples = append(r.Tuples,
		pvcagg.Tuple{Cells: []pvcagg.Cell{pvcagg.IntCell(2)}, Ann: pvcagg.MustParseExpr("ghost1")})
	db.Add(r)
	plan := &pvcagg.Scan{Table: "bad"}

	_, _, _, err := pvcagg.Run(db, plan)
	if err == nil {
		t.Fatal("Run: want error")
	}
	if strings.Contains(err.Error(), "tuples failed") {
		t.Errorf("Run error %q is the joined aggregate; want the first failure alone", err)
	}
	if !strings.Contains(err.Error(), "ghost1") {
		t.Errorf("Run error %q does not identify the failing tuple", err)
	}

	// The parallel wrapper keeps the joined aggregate.
	_, _, _, err = pvcagg.RunParallel(db, plan, pvcagg.ParallelOptions{Parallelism: 4})
	if err == nil || !strings.Contains(err.Error(), "tuples failed") {
		t.Errorf("RunParallel error %v, want the joined aggregate", err)
	}
}

// TestDeprecatedApproximateDelegation: the expression-level Approximate
// reproduces ExecExpr's anytime output.
func TestDeprecatedApproximateDelegation(t *testing.T) {
	reg := pvcagg.NewRegistry()
	reg.DeclareBool("x", 0.5)
	reg.DeclareBool("y", 0.5)
	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")
	aopts := pvcagg.ApproxOptions{Eps: 0.01}

	want, err := pvcagg.ExecExpr(context.Background(), e, reg, pvcagg.Boolean,
		pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithApprox(aopts))
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := pvcagg.Approximate(e, reg, pvcagg.Boolean, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if b != want.Confidence {
		t.Errorf("Approximate bounds %v != ExecExpr %v", b, want.Confidence)
	}
	if rep.Expansions != want.Approx.Expansions || rep.ExactNodes != want.Approx.ExactNodes ||
		rep.TreeNodes != want.Approx.TreeNodes || rep.Converged != want.Approx.Converged {
		t.Errorf("Approximate report %+v != ExecExpr %+v", rep, *want.Approx)
	}
}

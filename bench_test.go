// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7). Each benchmark family corresponds to one figure;
// run with
//
//	go test -bench=. -benchmem
//
// Absolute times are hardware- and language-dependent; the reproduced
// quantities are the qualitative shapes (see EXPERIMENTS.md): growth and
// saturation in c (Figure 7), linear growth in L (Figure 8b), the
// easy/hard/easy phase transition in #v (Figure 8a) and #l/#cl (Figure 9),
// the asymmetric behaviour of two-sided comparisons (Figure 10), and the
// polynomial ⟦·⟧/P(·) overhead on TPC-H (Figure 11). The benchmark
// parameters are scaled down from the paper's so that the full suite
// completes in minutes; cmd/experiments -preset paper runs the original
// parameters.
package pvcagg_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pvcagg"
	"pvcagg/internal/algebra"
	"pvcagg/internal/benchx"
	"pvcagg/internal/compile"
	"pvcagg/internal/core"
	"pvcagg/internal/engine"
	"pvcagg/internal/gen"
	"pvcagg/internal/pvc"
	"pvcagg/internal/server"
	"pvcagg/internal/tpch"
	"pvcagg/internal/value"
)

// benchBase mirrors Section 7.1's base parameters, scaled down
// (#v=15, L=40 instead of #v=25, L=200).
func benchBase() gen.Params { return benchx.QuickBase() }

func distOnce(b *testing.B, p gen.Params) {
	b.Helper()
	inst := gen.MustNew(p)
	pl := core.New(algebra.Boolean, inst.Registry)
	pl.Options = compile.Options{MaxNodes: 5_000_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.Distribution(inst.Expr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ExpA: Experiment A (Figure 7) — vary the constant c for
// each aggregation monoid and comparison operator.
func BenchmarkFig7ExpA(b *testing.B) {
	aggs := []algebra.Agg{algebra.Min, algebra.Max, algebra.Count, algebra.Sum}
	thetas := []value.Theta{value.EQ, value.LE, value.GE}
	cs := []int64{0, 50, 100, 200, 300}
	for _, agg := range aggs {
		for _, th := range thetas {
			for _, c := range cs {
				name := fmt.Sprintf("%s/%s/c=%d", agg, thName(th), c)
				b.Run(name, func(b *testing.B) {
					p := benchBase()
					p.AggL = agg
					p.Theta = th
					p.C = c
					if agg == algebra.Sum {
						p.C = c * 20 // the paper scales SUM's axis by maxv/2
					}
					p.Seed = 1
					distOnce(b, p)
				})
			}
		}
	}
}

// BenchmarkFig8bExpB: Experiment B (Figure 8b) — vary the number of terms
// L at constant #v.
func BenchmarkFig8bExpB(b *testing.B) {
	for _, agg := range []algebra.Agg{algebra.Min, algebra.Max, algebra.Count, algebra.Sum} {
		for _, l := range []int{10, 40, 100, 200} {
			b.Run(fmt.Sprintf("%s/L=%d", agg, l), func(b *testing.B) {
				p := benchBase()
				p.AggL = agg
				p.Theta = value.EQ
				p.L = l
				p.Seed = 1
				distOnce(b, p)
			})
		}
	}
}

// BenchmarkFig8aExpC: Experiment C (Figure 8a) — vary the number of
// distinct variables #v at constant expression size (easy/hard/easy).
func BenchmarkFig8aExpC(b *testing.B) {
	for _, v := range []int{4, 8, 12, 16, 24, 40, 80} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			p := benchBase()
			p.L = 30
			p.NumClauses = 2
			p.NumLiterals = 2
			p.MaxV = 5
			p.C = 3
			p.Theta = value.EQ
			p.NumVars = v
			p.Seed = 1
			distOnce(b, p)
		})
	}
}

// BenchmarkFig9ExpD: Experiment D (Figure 9) — vary literals per clause
// (a) and clauses per term (b).
func BenchmarkFig9ExpD(b *testing.B) {
	for _, agg := range []algebra.Agg{algebra.Min, algebra.Count} {
		for _, l := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("literals/%s/l=%d", agg, l), func(b *testing.B) {
				p := benchBase()
				p.L = 30
				p.MaxV = 5
				p.C = 3
				p.Theta = value.LE
				p.AggL = agg
				p.NumLiterals = l
				p.Seed = 1
				distOnce(b, p)
			})
		}
		for _, cl := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("clauses/%s/cl=%d", agg, cl), func(b *testing.B) {
				p := benchBase()
				p.L = 30
				p.MaxV = 5
				p.C = 3
				p.Theta = value.LE
				p.AggL = agg
				p.NumClauses = cl
				p.Seed = 1
				distOnce(b, p)
			})
		}
	}
}

// BenchmarkFig10ExpE: Experiment E (Figure 10) — two-sided comparisons
// with different aggregations per side, varying L then R.
func BenchmarkFig10ExpE(b *testing.B) {
	pairs := []benchx.AggPair{
		{L: algebra.Min, R: algebra.Max},
		{L: algebra.Min, R: algebra.Count},
		{L: algebra.Max, R: algebra.Sum},
	}
	for _, pair := range pairs {
		for _, l := range []int{10, 40, 80} {
			b.Run(fmt.Sprintf("%s-%s/L=%d", pair.L, pair.R, l), func(b *testing.B) {
				p := benchBase()
				p.NumClauses = 2
				p.NumLiterals = 2
				p.AggL, p.AggR = pair.L, pair.R
				p.L, p.R = l, 20
				p.Theta = value.LE
				p.Seed = 1
				distOnce(b, p)
			})
		}
		for _, r := range []int{10, 40, 80} {
			b.Run(fmt.Sprintf("%s-%s/R=%d", pair.L, pair.R, r), func(b *testing.B) {
				p := benchBase()
				p.NumClauses = 2
				p.NumLiterals = 2
				p.AggL, p.AggR = pair.L, pair.R
				p.L, p.R = 20, r
				p.Theta = value.LE
				p.Seed = 1
				distOnce(b, p)
			})
		}
	}
}

// BenchmarkFig11ExpF: Experiment F (Figure 11) — TPC-H Q1 and Q2 at
// increasing scale factors, separating Q0 (deterministic), ⟦·⟧
// (expression construction) and P(·) (probability computation).
func BenchmarkFig11ExpF(b *testing.B) {
	for _, sf := range []float64{0.0002, 0.0005, 0.001} {
		det, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		prb, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
		if err != nil {
			b.Fatal(err)
		}
		plans := []struct {
			name string
			plan engine.Plan
		}{
			{"Q1", tpch.Q1(1200)},
			{"Q2", tpch.Q2(1, "AFRICA")},
		}
		for _, q := range plans {
			b.Run(fmt.Sprintf("%s/Q0/sf=%g", q.name, sf), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.plan.Eval(det); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/JK/sf=%g", q.name, sf), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.plan.Eval(prb); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/P/sf=%g", q.name, sf), func(b *testing.B) {
				rel, err := q.plan.Eval(prb)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := engine.Probabilities(prb, rel, compile.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Paired sequential/parallel benchmarks for the concurrent execution
// layer: the same workload runs once through the sequential path and
// once through the bounded worker pool, so the reported ratio is the
// engine-level speedup (≈1× at GOMAXPROCS=1, growing with cores).

// BenchmarkParallelProbabilities: batched per-tuple probability
// computation on a multi-tuple TPC-H-style workload (Q1's grouped
// aggregates at growing scale factors).
func BenchmarkParallelProbabilities(b *testing.B) {
	for _, sf := range []float64{0.001, 0.002} {
		prb, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
		if err != nil {
			b.Fatal(err)
		}
		plan := tpch.Q1(1200)
		rel, err := plan.Eval(prb)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sequential/sf=%g", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Probabilities(prb, rel, compile.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/sf=%g", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.ProbabilitiesParallel(prb, rel, compile.Options{},
					engine.ParallelOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCompile: single-expression compilation with Shannon
// branches fanned out, on a hard random instance (two-sided comparison).
func BenchmarkParallelCompile(b *testing.B) {
	p := benchBase()
	p.NumClauses = 2
	p.NumLiterals = 2
	p.AggL, p.AggR = algebra.Min, algebra.Count
	p.L, p.R = 30, 20
	p.Theta = value.LE
	p.Seed = 1
	inst := gen.MustNew(p)
	pl := core.New(algebra.Boolean, inst.Registry)
	pl.Options = compile.Options{MaxNodes: 20_000_000}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pl.Distribution(inst.Expr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pl.DistributionParallel(inst.Expr, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkApproxVsExact: the anytime approximate engine against exact
// compilation on a hard two-sided comparison with skewed marginals — the
// regime where unexpanded Shannon branches carry little probability mass
// and the anytime engine converges after expanding a fraction of the
// d-tree. The reported ratio is the anytime speedup at each ε.
func BenchmarkApproxVsExact(b *testing.B) {
	p := benchBase()
	p.NumClauses = 2
	p.NumLiterals = 2
	p.AggL, p.AggR = algebra.Min, algebra.Count
	p.L, p.R = 30, 15
	p.NumVars = 20
	p.Theta = value.LE
	p.VarProb = 0.95
	p.Seed = 1
	inst := gen.MustNew(p)
	pl := core.New(algebra.Boolean, inst.Registry)
	pl.Options = compile.Options{MaxNodes: 20_000_000}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pl.Distribution(inst.Expr); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, eps := range []float64{0.05, 0.01} {
		b.Run(fmt.Sprintf("approx/eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, rep, err := pl.TruthProbabilityApprox(inst.Expr, compile.ApproxOptions{Eps: eps})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// Ablation benchmarks for the design choices called out in DESIGN.md.

func ablationParams() gen.Params {
	p := benchBase()
	p.AggL = algebra.Count
	p.Theta = value.LE
	p.C = 5
	p.L = 60
	p.Seed = 1
	return p
}

// BenchmarkAblationNoPruning: pruning + capping on vs off. The workload
// is the paper's own pruning example shape: [Σmin Φi⊗vi ≤ c] with a small
// c, where most terms have vi > c and are provably redundant.
func BenchmarkAblationNoPruning(b *testing.B) {
	params := benchBase()
	params.AggL = algebra.Min
	params.Theta = value.LE
	params.C = 20 // vi are uniform in [0, 200]: ~90% of terms prune away
	params.L = 60
	params.Seed = 1
	for _, off := range []bool{false, true} {
		name := "pruning=on"
		if off {
			name = "pruning=off"
		}
		b.Run(name, func(b *testing.B) {
			inst := gen.MustNew(params)
			pl := core.New(algebra.Boolean, inst.Registry)
			pl.Options = compile.Options{DisablePruning: off, MaxNodes: 5_000_000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pl.Distribution(inst.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoMemo: sub-expression memoisation on vs off.
func BenchmarkAblationNoMemo(b *testing.B) {
	p := ablationParams()
	p.L = 25
	p.NumVars = 10
	for _, off := range []bool{false, true} {
		name := "memo=on"
		if off {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			inst := gen.MustNew(p)
			pl := core.New(algebra.Boolean, inst.Registry)
			pl.Options = compile.Options{DisableMemo: off, MaxNodes: 20_000_000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pl.Distribution(inst.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVarOrder: Shannon variable-choice heuristics.
func BenchmarkAblationVarOrder(b *testing.B) {
	orders := []struct {
		name string
		ord  compile.VarOrder
	}{
		{"most-occurrences", compile.MostOccurrences},
		{"least-occurrences", compile.LeastOccurrences},
		{"lexicographic", compile.Lexicographic},
	}
	p := ablationParams()
	p.L = 25
	p.NumVars = 12
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			inst := gen.MustNew(p)
			pl := core.New(algebra.Boolean, inst.Registry)
			pl.Options = compile.Options{Order: o.ord, MaxNodes: 20_000_000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pl.Distribution(inst.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoFactoring: read-once factoring on vs off, on the
// hierarchical-style annotations where factoring is the whole game.
func BenchmarkAblationNoFactoring(b *testing.B) {
	// Example 14-style read-once module sum: x_i(y_i1⊗v + y_i2⊗v).
	build := func(n int) (pvcagg.Expr, *pvcagg.Registry) {
		reg := pvcagg.NewRegistry()
		s := "["
		for i := 0; i < n; i++ {
			xi := fmt.Sprintf("x%d", i)
			y1 := fmt.Sprintf("y%da", i)
			y2 := fmt.Sprintf("y%db", i)
			reg.DeclareBool(xi, 0.5)
			reg.DeclareBool(y1, 0.5)
			reg.DeclareBool(y2, 0.5)
			if i > 0 {
				s += ", "
			} else {
				s = "[min("
			}
			s += fmt.Sprintf("%s*%s @min %d, %s*%s @min %d", xi, y1, 10+i, xi, y2, 20+i)
		}
		s += ") <= 15]"
		return pvcagg.MustParseExpr(s), reg
	}
	e, reg := build(12)
	for _, off := range []bool{false, true} {
		name := "factoring=on"
		if off {
			name = "factoring=off"
		}
		b.Run(name, func(b *testing.B) {
			pl := pvcagg.NewPipeline(pvcagg.Boolean, reg)
			pl.Options = compile.Options{DisableFactoring: off, MaxNodes: 20_000_000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pl.Distribution(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharedCache: the cross-tuple compilation cache (WithSharedCache)
// on a pvc-table whose tuples share their selection comparison — the
// workload the cache exists for. The paired off/on runs report the
// ablation directly.
func BenchmarkSharedCache(b *testing.B) {
	db, rel := sharedAnnotationTable(b, 64)
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := pvcagg.ExecTable(context.Background(), db, rel,
					pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1), pvcagg.WithSharedCache(cached))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func thName(th value.Theta) string {
	switch th {
	case value.EQ:
		return "eq"
	case value.LE:
		return "le"
	case value.GE:
		return "ge"
	default:
		return th.String()
	}
}

// The Exec benchmark family measures the unified entrypoint in each
// strategy on the same TPC-H Q1 workload, so exact-vs-anytime-vs-parallel
// trajectories accumulate across PRs. Run ad hoc with -bench=Exec, or
// emit machine-readable JSON with
//
//	go test -run TestEmitBenchJSON -benchjson BENCH_exec.json
//
// (TestEmitBenchJSON drives the same closures through testing.Benchmark
// and writes them via benchx.WriteBenchJSON.)

var benchJSONPath = flag.String("benchjson", "", "write the Exec benchmark results as JSON to this file")

// execBenchCase is one named Exec workload.
type execBenchCase struct {
	name string
	fn   func(b *testing.B)
}

// execBenchCases builds the named Exec workloads shared by BenchmarkExec
// and TestEmitBenchJSON, in a fixed emission order.
func execBenchCases(sf float64) ([]execBenchCase, error) {
	db, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
	if err != nil {
		return nil, err
	}
	plan := tpch.Q1(1200)
	run := func(opts ...pvcagg.Option) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pvcagg.Exec(context.Background(), db, plan, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stream := func(opts ...pvcagg.Option) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pvcagg.Exec(context.Background(), db, plan, opts...)
				if err != nil {
					b.Fatal(err)
				}
				for _, err := range res.Results() {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	// traced mirrors run with a fresh Trace per iteration — the overhead
	// row for the <3% tracing budget (a shared trace would accumulate
	// spans across iterations and measure slice growth, not tracing).
	traced := func(opts ...pvcagg.Option) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pvcagg.Exec(context.Background(), db, plan,
					append(opts[:len(opts):len(opts)], pvcagg.WithTrace(pvcagg.NewTrace()))...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []execBenchCase{
		{"exact/seq", run(pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1))},
		{"exact/seq+trace", traced(pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1))},
		{"exact/par", run(pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(0))},
		{"exact/stream", stream(pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(0))},
		{"exact/seq+cache", run(pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1), pvcagg.WithSharedCache(true))},
		{"anytime/0.05", run(pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0.05))},
		{"auto", run(pvcagg.WithEps(0.05))},
		{"sample/10k", run(pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(1))},
	}, nil
}

// BenchmarkExec: the unified entrypoint across strategies on TPC-H Q1.
func BenchmarkExec(b *testing.B) {
	cases, err := execBenchCases(0.0005)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.name, c.fn)
	}
}

// tpchQ1PVQLBench is TPC-H Q1 as PVQL text, the workload of
// BenchmarkExecQuery.
const tpchQ1PVQLBench = `SELECT l_returnflag, l_linestatus, COUNT(*) AS count_order
  FROM lineitem WHERE l_shipdate <= 1200 GROUP BY l_returnflag, l_linestatus`

// execQueryBenchCases builds the PVQL frontend workloads: compile-only
// (parse + bind + optimize) and the full parse+optimize+run path, so the
// frontend's overhead is tracked alongside engine performance.
func execQueryBenchCases(sf float64) ([]execBenchCase, error) {
	db, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
	if err != nil {
		return nil, err
	}
	return []execBenchCase{
		{"compile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pvcagg.ParseQuery(db, tpchQ1PVQLBench); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"exact/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pvcagg.ExecQuery(context.Background(), db, tpchQ1PVQLBench,
					pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}, nil
}

// BenchmarkExecQuery: the PVQL frontend (parse + optimize + run) on
// TPC-H Q1; compare with BenchmarkExec/exact/seq for the frontend
// overhead.
func BenchmarkExecQuery(b *testing.B) {
	cases, err := execQueryBenchCases(0.0005)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.name, c.fn)
	}
}

// evalPathBenchCases builds the streaming-vs-materialized step-I
// ablation on join/product-heavy plans where the materializing engine
// buffers a large intermediate the streaming path never allocates:
//
//   - product-select: σ[u≤w ∧ w≤u](PA × PB) — a θ-product of 360×360 =
//     129,600 pairs of which ~65 survive. Materializing builds the full
//     product relation first; streaming fuses the σ atoms into the pair
//     iterator and allocates output cells and annotations only for
//     survivors.
//   - join-filter-group: $[a; COUNT](σ[u≤5](JA ⋈ JB)) — a selective
//     filter over a wide hash join feeding a grouping sink. The
//     materializing path buffers the whole join output; streaming keeps
//     only the build table and the per-group accumulators.
//
// Both run engine.EvalPlan vs engine.StreamEvalPlan directly (step I
// only — step II is identical by construction), with allocations
// reported, so BENCH_exec.json records the memory cliff.
func evalPathBenchCases() ([]execBenchCase, error) {
	rng := rand.New(rand.NewSource(7))
	db := pvc.NewDatabase(algebra.Boolean)
	add := func(name string, cols [2]string, n int, row func(i int) [2]int64) error {
		rel := pvc.NewRelation(name, pvc.Schema{
			{Name: cols[0], Type: pvc.TValue},
			{Name: cols[1], Type: pvc.TValue},
		})
		for i := 0; i < n; i++ {
			r := row(i)
			if _, err := db.InsertIndependent(rel, 0.5, pvc.IntCell(r[0]), pvc.IntCell(r[1])); err != nil {
				return err
			}
		}
		db.Add(rel)
		return nil
	}
	if err := add("PA", [2]string{"a", "u"}, 360, func(i int) [2]int64 {
		return [2]int64{int64(i), rng.Int63n(2000)}
	}); err != nil {
		return nil, err
	}
	if err := add("PB", [2]string{"b", "w"}, 360, func(i int) [2]int64 {
		return [2]int64{int64(i), rng.Int63n(2000)}
	}); err != nil {
		return nil, err
	}
	if err := add("JA", [2]string{"a", "u"}, 400, func(i int) [2]int64 {
		return [2]int64{rng.Int63n(50), rng.Int63n(100)}
	}); err != nil {
		return nil, err
	}
	if err := add("JB", [2]string{"a", "v"}, 200, func(i int) [2]int64 {
		return [2]int64{rng.Int63n(50), int64(i)}
	}); err != nil {
		return nil, err
	}
	productSelect := &engine.Select{
		Input: &engine.Product{L: &engine.Scan{Table: "PA"}, R: &engine.Scan{Table: "PB"}},
		Pred:  engine.Where(engine.ColThetaCol("u", value.LE, "w"), engine.ColThetaCol("w", value.LE, "u")),
	}
	joinFilterGroup := &engine.GroupAgg{
		Input: &engine.Select{
			Input: &engine.Join{L: &engine.Scan{Table: "JA"}, R: &engine.Scan{Table: "JB"}},
			Pred:  engine.Where(engine.ColTheta("u", value.LE, pvc.IntCell(5))),
		},
		GroupBy: []string{"a"},
		Aggs:    []engine.AggSpec{{Out: "n", Agg: algebra.Count}},
	}
	mk := func(plan engine.Plan, streaming bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if streaming {
					_, _, err = engine.StreamEvalPlan(context.Background(), db, plan)
				} else {
					_, _, err = engine.EvalPlan(context.Background(), db, plan)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []execBenchCase{
		{"product-select/materialized", mk(productSelect, false)},
		{"product-select/streaming", mk(productSelect, true)},
		{"join-filter-group/materialized", mk(joinFilterGroup, false)},
		{"join-filter-group/streaming", mk(joinFilterGroup, true)},
	}, nil
}

// BenchmarkEvalPath: streaming vs materialized step-I execution on
// join/product-heavy plans (see evalPathBenchCases).
func BenchmarkEvalPath(b *testing.B) {
	cases, err := evalPathBenchCases()
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.name, c.fn)
	}
}

// TestEmitBenchJSON runs the Exec benchmark family through
// testing.Benchmark and writes the measurements to the file named by
// -benchjson (skipped when the flag is unset), so CI and scripts can
// accumulate BENCH_exec.json without parsing -bench output.
func TestEmitBenchJSON(t *testing.T) {
	if *benchJSONPath == "" {
		t.Skip("-benchjson not set")
	}
	cases, err := execBenchCases(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	queryCases, err := execQueryBenchCases(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	evalCases, err := evalPathBenchCases()
	if err != nil {
		t.Fatal(err)
	}
	records := make([]benchx.BenchRecord, 0, len(cases)+len(queryCases)+len(evalCases))
	emit := func(prefix string, cs []execBenchCase) {
		for _, c := range cs {
			// Level the heap between cases: earlier cases' garbage
			// otherwise skews the GC pacing (and so the ns/op) of
			// later ones, which run in one shared process here unlike
			// under `go test -bench`.
			runtime.GC()
			r := testing.Benchmark(c.fn)
			records = append(records, benchx.BenchRecord{
				Name:        prefix + c.name,
				N:           r.N,
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			})
		}
	}
	emit("Exec/", cases)
	emit("ExecQuery/", queryCases)
	emit("EvalPath/", evalCases)
	storeRecs, err := storeBenchRecords()
	if err != nil {
		t.Fatal(err)
	}
	records = append(records, storeRecs...)
	rep, err := pvcdWorkloadReport()
	if err != nil {
		t.Fatal(err)
	}
	records = append(records, rep.BenchRecords("pvcd/mixed")...)
	if err := benchx.WriteBenchJSON(*benchJSONPath, records); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d records to %s", len(records), *benchJSONPath)
}

// pvcdWorkloadReport drives the benchx workload driver against an
// in-process query service on the same probabilistic TPC-H database as
// the Exec family, producing the pvcd/* tail-latency rows (p50/p95/p99
// over a mixed exact/anytime/sample request stream with a tight-deadline
// component) of BENCH_exec.json.
func pvcdWorkloadReport() (benchx.WorkloadReport, error) {
	db, err := tpch.Generate(tpch.Config{SF: 0.0005, Seed: 1, Probabilistic: true})
	if err != nil {
		return benchx.WorkloadReport{}, err
	}
	s := server.New(db, server.Config{
		Workers:      2,
		QueueDepth:   8,
		MaxQueueWait: 500 * time.Millisecond,
		DegradeAfter: 100 * time.Millisecond,
	})
	mkBody := func(extra map[string]any) string {
		m := map[string]any{"query": tpchQ1PVQLBench}
		for k, v := range extra {
			m[k] = v
		}
		b, err := json.Marshal(m)
		if err != nil {
			panic(err)
		}
		return string(b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return benchx.RunWorkload(ctx, s.Handler(), benchx.WorkloadConfig{
		Clients:  8,
		Requests: 6,
		Seed:     1,
		Bodies: []string{
			mkBody(map[string]any{"mode": "exact"}),
			mkBody(map[string]any{"mode": "anytime", "eps": 0.1}),
			mkBody(map[string]any{"mode": "sample", "seed": 7, "samples": 1000}),
			mkBody(map[string]any{"timeout_ms": 1}),
		},
	})
}

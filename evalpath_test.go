package pvcagg_test

// Cross-path golden acceptance: the paper's two pinned queries (TPC-H Q1
// at p = 0.9 non-dyadic marginals, Figure 1 Q2) must produce bit-for-bit
// identical Results through the streaming (default) and materialized
// execution paths — confidences, aggregation distributions, verdicts —
// exercising the WithEvalPath option end to end.

import (
	"context"
	"strings"
	"testing"

	"pvcagg"
	"pvcagg/internal/tpch"
)

func TestExecEvalPathTPCHQ1BitForBit(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.001, Seed: 1, Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := pvcagg.ExecQuery(ctx, db, tpchQ1PVQL, pvcagg.WithEvalPath(pvcagg.MaterializedEval))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pvcagg.ExecQuery(ctx, db, tpchQ1PVQL, pvcagg.WithEvalPath(pvcagg.StreamingEval))
	if err != nil {
		t.Fatal(err)
	}
	if want.Strategy.EvalPath != pvcagg.MaterializedEval || got.Strategy.EvalPath != pvcagg.StreamingEval {
		t.Fatalf("Strategy.EvalPath not recorded: %v vs %v", want.Strategy.EvalPath, got.Strategy.EvalPath)
	}
	assertSameResults(t, want, got)
}

func TestExecEvalPathFigure1Q2BitForBit(t *testing.T) {
	db := figure1ShopDB(0.5)
	ctx := context.Background()
	// Anytime bounds are expansion-order sensitive, so agreement here pins
	// that streaming reproduces the exact annotation expression structure,
	// not just the numbers.
	for _, mode := range []pvcagg.Option{
		pvcagg.WithMode(pvcagg.Auto),
		pvcagg.WithMode(pvcagg.Exact),
		pvcagg.WithMode(pvcagg.Anytime),
	} {
		want, err := pvcagg.ExecQuery(ctx, db, figure1Q2PVQL, mode, pvcagg.WithEvalPath(pvcagg.MaterializedEval))
		if err != nil {
			t.Fatal(err)
		}
		got, err := pvcagg.ExecQuery(ctx, db, figure1Q2PVQL, mode)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, want, got)
	}
}

func TestExecEvalPathValidation(t *testing.T) {
	db := figure1ShopDB(0.5)
	_, err := pvcagg.ExecQuery(context.Background(), db, figure1Q2PVQL, pvcagg.WithEvalPath(pvcagg.EvalPath(99)))
	if err == nil || !strings.Contains(err.Error(), "unknown eval path") {
		t.Fatalf("invalid eval path accepted: %v", err)
	}
	if got := pvcagg.StreamingEval.String(); got != "streaming" {
		t.Fatalf("StreamingEval.String() = %q", got)
	}
	if got := pvcagg.MaterializedEval.String(); got != "materialized" {
		t.Fatalf("MaterializedEval.String() = %q", got)
	}
}

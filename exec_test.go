package pvcagg_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"pvcagg"
)

// execTestDB builds a small pvc-database with a grouped-SUM plan whose
// selection-on-aggregate annotations exercise the full pipeline, plus the
// plan itself.
func execTestDB(t *testing.T) (*pvcagg.Database, pvcagg.Plan) {
	t.Helper()
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	r := pvcagg.NewRelation("R", pvcagg.Schema{
		{Name: "k", Type: pvcagg.TValue},
		{Name: "v", Type: pvcagg.TValue},
	})
	for i := int64(0); i < 8; i++ {
		if _, err := db.InsertIndependent(r, 0.25+0.05*float64(i), pvcagg.IntCell(i%3), pvcagg.IntCell(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(r)
	plan := &pvcagg.GroupAgg{
		Input:   &pvcagg.Scan{Table: "R"},
		GroupBy: []string{"k"},
		Aggs:    []pvcagg.AggSpec{{Out: "total", Agg: pvcagg.SUM, Over: "v"}},
	}
	return db, plan
}

// hardTestDB builds the Figure 1 shop database and the hard query Q2
// (selection on a MAX aggregate over a non-hierarchical join), which
// Classify rejects from Qind/Qhie.
func hardTestDB(t *testing.T) (*pvcagg.Database, pvcagg.Plan) {
	t.Helper()
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	declare := func(name string) pvcagg.Expr {
		db.Registry.DeclareBool(name, 0.5)
		return pvcagg.MustParseExpr(name)
	}
	s := pvcagg.NewRelation("S", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "shop", Type: pvcagg.TString},
	})
	for i, shop := range []string{"M&S", "M&S", "M&S", "Gap", "Gap"} {
		s.MustInsert(declare("x"+string(rune('1'+i))), pvcagg.IntCell(int64(i+1)), pvcagg.StringCell(shop))
	}
	db.Add(s)
	ps := pvcagg.NewRelation("PS", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "price", Type: pvcagg.TValue},
	})
	for i, row := range [][2]int64{{1, 10}, {1, 50}, {2, 11}, {3, 15}, {4, 60}, {5, 10}} {
		ps.MustInsert(declare("y"+string(rune('1'+i))), pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]))
	}
	db.Add(ps)
	plan := &pvcagg.Project{
		Cols: []string{"shop"},
		Input: &pvcagg.Select{
			Pred: pvcagg.Where(pvcagg.ColTheta("P", pvcagg.LE, pvcagg.IntCell(50))),
			Input: &pvcagg.GroupAgg{
				Input:   &pvcagg.Join{L: &pvcagg.Scan{Table: "S"}, R: &pvcagg.Scan{Table: "PS"}},
				GroupBy: []string{"shop"},
				Aggs:    []pvcagg.AggSpec{{Out: "P", Agg: pvcagg.MAX, Over: "price"}},
			},
		},
	}
	return db, plan
}

func collect(t *testing.T, db *pvcagg.Database, plan pvcagg.Plan, opts ...pvcagg.Option) (*pvcagg.Result, []pvcagg.TupleOutcome) {
	t.Helper()
	res, err := pvcagg.Exec(context.Background(), db, plan, opts...)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return res, outs
}

// TestExecDifferential is the acceptance criterion: the same plan runs
// through Exec in every mode and through every deprecated wrapper, and
// all agree — bit-for-bit for exact paths, identical bounds for anytime,
// and Auto's chosen strategy matches Classify's verdict.
func TestExecDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*testing.T) (*pvcagg.Database, pvcagg.Plan)
	}{
		{"tractable", execTestDB},
		{"hard", hardTestDB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, plan := tc.mk(t)

			// Reference: exact sequential.
			_, ref := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1))

			// Exact at several parallelisms: bit-for-bit.
			for _, par := range []int{0, 2, 4} {
				_, got := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(par))
				if len(got) != len(ref) {
					t.Fatalf("parallelism %d: %d outcomes, want %d", par, len(got), len(ref))
				}
				for i := range ref {
					if got[i].Tuple.Key() != ref[i].Tuple.Key() {
						t.Errorf("parallelism %d tuple %d: key %q != %q", par, i, got[i].Tuple.Key(), ref[i].Tuple.Key())
					}
					if got[i].Confidence != ref[i].Confidence {
						t.Errorf("parallelism %d tuple %d: confidence %v != %v (want bit-for-bit)", par, i, got[i].Confidence, ref[i].Confidence)
					}
					for j := range ref[i].AggDists {
						if !got[i].AggDists[j].Equal(ref[i].AggDists[j], 0) {
							t.Errorf("parallelism %d tuple %d agg %d: %v != %v", par, i, j, got[i].AggDists[j], ref[i].AggDists[j])
						}
					}
				}
			}

			// Anytime: bounds contain the exact confidence and obey ε;
			// aggregation columns stay bit-for-bit exact.
			eps := 0.02
			_, any1 := collect(t, db, plan, pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(eps), pvcagg.WithParallelism(1))
			for i := range ref {
				b := any1[i].Confidence
				if !b.Contains(ref[i].Confidence.Lo, 1e-12) {
					t.Errorf("anytime tuple %d: bounds %v do not contain exact %v", i, b, ref[i].Confidence.Lo)
				}
				if b.Width() > eps {
					t.Errorf("anytime tuple %d: width %v > ε %v", i, b.Width(), eps)
				}
				for j := range ref[i].AggDists {
					if !any1[i].AggDists[j].Equal(ref[i].AggDists[j], 0) {
						t.Errorf("anytime tuple %d agg %d: %v != %v", i, j, any1[i].AggDists[j], ref[i].AggDists[j])
					}
				}
			}
			// Anytime is deterministic: identical bounds at any parallelism.
			_, any4 := collect(t, db, plan, pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(eps), pvcagg.WithParallelism(4))
			for i := range any1 {
				if any1[i].Confidence != any4[i].Confidence {
					t.Errorf("anytime tuple %d: bounds %v (par 1) != %v (par 4)", i, any1[i].Confidence, any4[i].Confidence)
				}
			}

			// Auto: the chosen strategy must match Classify's verdict.
			autoRes, autoOuts := collect(t, db, plan, pvcagg.WithEps(eps))
			v := pvcagg.Classify(plan, db)
			wantMode := pvcagg.Exact
			if v.Class == pvcagg.Hard {
				wantMode = pvcagg.Anytime
			}
			if autoRes.Strategy.Chosen != wantMode {
				t.Errorf("Auto chose %v for a %v plan, want %v", autoRes.Strategy.Chosen, v.Class, wantMode)
			}
			if autoRes.Strategy.Requested != pvcagg.Auto {
				t.Errorf("Strategy.Requested = %v, want Auto", autoRes.Strategy.Requested)
			}
			if autoRes.Strategy.Verdict == nil || autoRes.Strategy.Verdict.Class != v.Class {
				t.Errorf("Strategy.Verdict = %+v, want class %v", autoRes.Strategy.Verdict, v.Class)
			}
			for i := range ref {
				if !autoOuts[i].Confidence.Contains(ref[i].Confidence.Lo, 1e-12) {
					t.Errorf("auto tuple %d: %v does not contain exact %v", i, autoOuts[i].Confidence, ref[i].Confidence.Lo)
				}
				if wantMode == pvcagg.Exact && autoOuts[i].Confidence != ref[i].Confidence {
					t.Errorf("auto tuple %d: exact route must be bit-for-bit, got %v want %v", i, autoOuts[i].Confidence, ref[i].Confidence)
				}
			}

			// Sample: intervals hit the exact confidence (10k samples at
			// 95% per tuple; the generous tolerance below makes flakes
			// astronomically unlikely) and are seed-reproducible.
			_, smp := collect(t, db, plan, pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(7))
			_, smp2 := collect(t, db, plan, pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(7), pvcagg.WithParallelism(4))
			for i := range ref {
				if !smp[i].Confidence.Contains(ref[i].Confidence.Lo, 0.05) {
					t.Errorf("sample tuple %d: %v too far from exact %v", i, smp[i].Confidence, ref[i].Confidence.Lo)
				}
				if smp[i].Confidence != smp2[i].Confidence {
					t.Errorf("sample tuple %d: seed 7 not reproducible across parallelism: %v != %v", i, smp[i].Confidence, smp2[i].Confidence)
				}
			}

			// Every deprecated wrapper delegates to Exec: see
			// deprecated_test.go for the per-wrapper bit-for-bit assertions;
			// here the five run functions are cross-checked against the
			// reference in one sweep.
			if _, legacy, _, err := pvcagg.Run(db, plan); err != nil {
				t.Fatal(err)
			} else {
				for i := range ref {
					if legacy[i].Confidence != ref[i].Confidence.Lo {
						t.Errorf("Run tuple %d: %v != %v", i, legacy[i].Confidence, ref[i].Confidence.Lo)
					}
				}
			}
		})
	}
}

// TestExecStreaming: the streaming iterator yields every tuple exactly
// once (re-associated via Index), matching Collect bit-for-bit, and an
// early break cancels the remaining work without deadlock.
func TestExecStreaming(t *testing.T) {
	db, plan := execTestDB(t)
	_, want := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact))

	res, err := pvcagg.Exec(context.Background(), db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int]pvcagg.TupleOutcome)
	for o, err := range res.Results() {
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := got[o.Index]; dup {
			t.Fatalf("tuple %d yielded twice", o.Index)
		}
		got[o.Index] = o
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d outcomes, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Confidence != w.Confidence || g.Tuple.Key() != w.Tuple.Key() {
			t.Errorf("tuple %d: streamed %v/%q, want %v/%q", i, g.Confidence, g.Tuple.Key(), w.Confidence, w.Tuple.Key())
		}
	}
	if res.Timing.Probability <= 0 {
		t.Errorf("Timing.Probability not populated after stream drain")
	}

	// The stream is single-use.
	if _, err := res.Collect(); !errors.Is(err, pvcagg.ErrConsumed) {
		t.Errorf("Collect after stream: err = %v, want ErrConsumed", err)
	}

	// Early break terminates cleanly.
	res2, err := pvcagg.Exec(context.Background(), db, plan, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range res2.Results() {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("broke after %d outcomes, want 2", n)
	}

	// After Collect, Results replays the cached outcomes in tuple order.
	res3, outs := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact))
	i := 0
	for o, err := range res3.Results() {
		if err != nil {
			t.Fatal(err)
		}
		if o.Index != outs[i].Index {
			t.Errorf("replay out of order: got %d at position %d", o.Index, i)
		}
		i++
	}
	if i != len(outs) {
		t.Errorf("replayed %d outcomes, want %d", i, len(outs))
	}
}

// TestExecOptionValidation: contradictory option combinations are
// rejected with descriptive errors instead of silently picking a
// semantics.
func TestExecOptionValidation(t *testing.T) {
	db, plan := execTestDB(t)
	cases := []struct {
		name string
		opts []pvcagg.Option
		want string
	}{
		{"exact+eps", []pvcagg.Option{pvcagg.WithMode(pvcagg.Exact), pvcagg.WithEps(0.1)}, "WithEps conflicts with WithMode(Exact)"},
		{"exact+approx", []pvcagg.Option{pvcagg.WithMode(pvcagg.Exact), pvcagg.WithApprox(pvcagg.ApproxOptions{Eps: 0.1})}, "WithApprox conflicts"},
		{"eps-range", []pvcagg.Option{pvcagg.WithEps(1.5)}, "out of range"},
		{"approx-eps-range", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithApprox(pvcagg.ApproxOptions{Eps: -0.5})}, "out of range"},
		{"eps-negative", []pvcagg.Option{pvcagg.WithEps(-0.1)}, "out of range"},
		{"eps-twice", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0.1), pvcagg.WithApprox(pvcagg.ApproxOptions{Eps: 0.2})}, "epsilon specified twice"},
		// The legacy silent-mode mismatch: ε = 0 ("exact, please") plus a
		// budget that can abandon convergence is now a hard error.
		{"anytime-eps0-budget", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0), pvcagg.WithApprox(pvcagg.ApproxOptions{MaxNodes: 100})}, "contradictory anytime options"},
		{"auto-eps0", []pvcagg.Option{pvcagg.WithEps(0)}, "disables the anytime fallback"},
		{"sample-noseed", []pvcagg.Option{pvcagg.WithMode(pvcagg.Sample)}, "requires an explicit WithSeed"},
		{"sample+eps", []pvcagg.Option{pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(1), pvcagg.WithEps(0.1)}, "WithEps conflicts with WithMode(Sample)"},
		{"sample-bad-n", []pvcagg.Option{pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(1), pvcagg.WithSamples(0)}, "must be positive"},
		{"seed-wrong-mode", []pvcagg.Option{pvcagg.WithMode(pvcagg.Exact), pvcagg.WithSeed(1)}, "WithSeed only applies"},
		{"samples-wrong-mode", []pvcagg.Option{pvcagg.WithSamples(100)}, "WithSamples only applies"},
		{"bad-timeout", []pvcagg.Option{pvcagg.WithTimeout(-time.Second)}, "must be positive"},
		{"budget-twice", []pvcagg.Option{pvcagg.WithCompileBudget(10), pvcagg.WithCompileOptions(pvcagg.CompileOptions{MaxNodes: 20})}, "compile budget specified twice"},
		{"budget-vs-approx", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithCompileBudget(10), pvcagg.WithApprox(pvcagg.ApproxOptions{Eps: 0.1, Compile: pvcagg.CompileOptions{MaxNodes: 20}})}, "compile budget specified twice"},
		{"compile-twice", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0.1), pvcagg.WithCompileOptions(pvcagg.CompileOptions{MaxNodes: 100}), pvcagg.WithApprox(pvcagg.ApproxOptions{Compile: pvcagg.CompileOptions{MaxNodes: 1 << 20}})}, "compile options specified twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := pvcagg.Exec(context.Background(), db, plan, tc.opts...)
			if err == nil {
				t.Fatalf("no error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}

	// Anytime ε = 0 with *no* budgets keeps the documented exact-fallback
	// contract (the legacy RunApprox{Eps: 0} shape).
	_, outs := collect(t, db, plan, pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0))
	_, ref := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact))
	for i := range ref {
		if outs[i].Confidence != ref[i].Confidence {
			t.Errorf("tuple %d: anytime ε=0 %v != exact %v (bit-for-bit contract)", i, outs[i].Confidence, ref[i].Confidence)
		}
	}
}

// TestExecOnBoundsAllModes: WithOnBounds is never silently dead — every
// strategy (including Auto's exact route) reports per-tuple bounds.
func TestExecOnBoundsAllModes(t *testing.T) {
	db, plan := execTestDB(t)
	for _, tc := range []struct {
		name string
		opts []pvcagg.Option
	}{
		{"exact", []pvcagg.Option{pvcagg.WithMode(pvcagg.Exact)}},
		{"anytime", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0.05)}},
		{"auto-exact-route", nil},
		{"sample", []pvcagg.Option{pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(1), pvcagg.WithSamples(100)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			opts := append(tc.opts,
				pvcagg.WithParallelism(1), // single worker: no locking needed
				pvcagg.WithOnBounds(func(pvcagg.Bounds) { calls++ }))
			res, err := pvcagg.Exec(context.Background(), db, plan, opts...)
			if err != nil {
				t.Fatal(err)
			}
			outs, err := res.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if calls < len(outs) {
				t.Errorf("OnBounds called %d times for %d tuples", calls, len(outs))
			}
		})
	}
}

// TestExecCancellation: cancelling the context mid-run aborts the
// in-flight compilations on the exact, parallel-exact and anytime paths,
// and Collect surfaces context.Canceled.
func TestExecCancellation(t *testing.T) {
	db, plan := hardTestDB(t)
	for _, tc := range []struct {
		name string
		opts []pvcagg.Option
	}{
		{"exact-seq", []pvcagg.Option{pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(1)}},
		{"exact-par", []pvcagg.Option{pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(4)}},
		{"anytime", []pvcagg.Option{pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(1e-9)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // cancelled before step II starts
			res, err := pvcagg.Exec(ctx, db, plan, tc.opts...)
			if err != nil {
				// EvalPlan already noticed the cancellation — acceptable.
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Exec error = %v, want context.Canceled", err)
				}
				return
			}
			if _, err := res.Collect(); !errors.Is(err, context.Canceled) {
				t.Errorf("Collect error = %v, want context.Canceled", err)
			}
		})
	}

	// WithTimeout behaves like external cancellation.
	res, err := pvcagg.Exec(context.Background(), db, plan,
		pvcagg.WithMode(pvcagg.Exact), pvcagg.WithTimeout(time.Nanosecond))
	if err == nil {
		if _, err = res.Collect(); err == nil {
			t.Fatal("no error from a 1ns timeout")
		}
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout error = %v, want context.DeadlineExceeded", err)
	}
}

// TestExecTable: the table-level entrypoint matches Exec on the same
// plan's evaluated relation, and Auto selects the anytime engine.
func TestExecTable(t *testing.T) {
	db, plan := execTestDB(t)
	res, want := collect(t, db, plan, pvcagg.WithMode(pvcagg.Exact))

	tres, err := pvcagg.ExecTable(context.Background(), db, res.Rel, pvcagg.WithMode(pvcagg.Exact))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tres.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Confidence != want[i].Confidence {
			t.Errorf("tuple %d: %v != %v", i, got[i].Confidence, want[i].Confidence)
		}
	}

	auto, err := pvcagg.ExecTable(context.Background(), db, res.Rel)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Strategy.Chosen != pvcagg.Anytime {
		t.Errorf("ExecTable Auto chose %v, want Anytime", auto.Strategy.Chosen)
	}
	aouts, err := auto.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !aouts[i].Confidence.Contains(want[i].Confidence.Lo, 1e-12) {
			t.Errorf("tuple %d: auto bounds %v miss exact %v", i, aouts[i].Confidence, want[i].Confidence.Lo)
		}
	}
}

// TestExecExpr: the expression-level entrypoint across modes, including
// Auto's exact-probe-then-anytime fallback.
func TestExecExpr(t *testing.T) {
	ctx := context.Background()
	reg := pvcagg.NewRegistry()
	reg.DeclareBool("x", 0.5)
	reg.DeclareBool("y", 0.5)
	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")

	exact, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean, pvcagg.WithMode(pvcagg.Exact))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Confidence.Lo-0.5) > 1e-12 || exact.Confidence.Width() != 0 {
		t.Errorf("exact confidence %v, want [0.5, 0.5]", exact.Confidence)
	}
	if exact.Dist.P(pvcagg.BoolV(true)) != exact.Confidence.Lo {
		t.Errorf("Dist and Confidence disagree")
	}

	auto, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Strategy.Chosen != pvcagg.Exact {
		t.Errorf("Auto on a tiny expression chose %v, want Exact (probe succeeds)", auto.Strategy.Chosen)
	}
	if auto.Confidence != exact.Confidence {
		t.Errorf("auto %v != exact %v", auto.Confidence, exact.Confidence)
	}

	// A compile budget of 1 node forces Auto's anytime fallback.
	fb, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean, pvcagg.WithCompileBudget(1), pvcagg.WithEps(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if fb.Strategy.Chosen != pvcagg.Anytime {
		t.Errorf("Auto with a 1-node budget chose %v, want Anytime fallback", fb.Strategy.Chosen)
	}
	if !fb.Confidence.Contains(0.5, 1e-12) || fb.Confidence.Width() > 0.01 {
		t.Errorf("fallback bounds %v, want ⊇ 0.5 with width ≤ 0.01", fb.Confidence)
	}

	anytime, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean, pvcagg.WithMode(pvcagg.Anytime), pvcagg.WithEps(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !anytime.Confidence.Contains(0.5, 1e-12) || !anytime.Approx.Converged {
		t.Errorf("anytime %v (converged=%v)", anytime.Confidence, anytime.Approx.Converged)
	}

	smp, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean, pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if !smp.Confidence.Contains(0.5, 0.05) {
		t.Errorf("sampled %v too far from 0.5", smp.Confidence)
	}
	smp2, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean, pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if smp.Confidence != smp2.Confidence {
		t.Errorf("seed 42 not reproducible: %v != %v", smp.Confidence, smp2.Confidence)
	}

	// Sampling honours the context: a cancelled ctx aborts the world
	// loop instead of running all samples to completion.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := pvcagg.ExecExpr(cctx, e, reg, pvcagg.Boolean,
		pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(1), pvcagg.WithSamples(50_000_000)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sample run: err = %v, want context.Canceled", err)
	}

	// WithParallelism reaches the exact compilation path bit-for-bit.
	par8, err := pvcagg.ExecExpr(ctx, e, reg, pvcagg.Boolean, pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if par8.Confidence != exact.Confidence || !par8.Dist.Equal(exact.Dist, 0) {
		t.Errorf("parallel ExecExpr %v != sequential %v", par8.Confidence, exact.Confidence)
	}

	// Module expressions: exact only; Anytime refuses.
	m := pvcagg.MustParseExpr("sum(x @sum 5, y @sum 7)")
	mres, err := pvcagg.ExecExpr(ctx, m, reg, pvcagg.Boolean)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Strategy.Chosen != pvcagg.Exact || mres.Dist.Size() == 0 {
		t.Errorf("module expression: strategy %v, dist %v", mres.Strategy.Chosen, mres.Dist)
	}
	if _, err := pvcagg.ExecExpr(ctx, m, reg, pvcagg.Boolean, pvcagg.WithMode(pvcagg.Anytime)); err == nil {
		t.Error("Anytime on a module expression: want error")
	}
}

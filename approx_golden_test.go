// Golden tests for the anytime approximate engine on the paper's two
// reference workloads: the Figure 1 running-example query Q2 and TPC-H Q1.
// The expected bound widths and node/expansion counts pin down the
// priority-frontier heuristic and the closure budgets — a behavioural
// change that silently widens bounds or expands more of the d-tree fails
// here. All Figure 1 probabilities are dyadic rationals (every marginal is
// 0.5), so the expected values are exact floats.
package pvcagg_test

import (
	"fmt"
	"math"
	"testing"

	"pvcagg"
	"pvcagg/internal/tpch"
)

// figure1ShopDB is the paper's Figure 1 database (also cmd/pvcrun's shop
// demo) with every tuple marginal p.
func figure1ShopDB(p float64) *pvcagg.Database {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	s := pvcagg.NewRelation("S", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "shop", Type: pvcagg.TString},
	})
	for i, shop := range []string{"M&S", "M&S", "M&S", "Gap", "Gap"} {
		db.Registry.DeclareBool(fmt.Sprintf("x%d", i+1), p)
		s.MustInsert(pvcagg.MustParseExpr(fmt.Sprintf("x%d", i+1)),
			pvcagg.IntCell(int64(i+1)), pvcagg.StringCell(shop))
	}
	db.Add(s)
	ps := pvcagg.NewRelation("PS", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "price", Type: pvcagg.TValue},
	})
	for _, row := range [][3]int64{
		{1, 1, 10}, {1, 2, 50}, {2, 1, 11}, {2, 2, 60}, {3, 3, 15},
		{3, 4, 40}, {4, 1, 15}, {4, 3, 60}, {5, 1, 10},
	} {
		v := fmt.Sprintf("y%d%d", row[0], row[1])
		db.Registry.DeclareBool(v, p)
		ps.MustInsert(pvcagg.MustParseExpr(v),
			pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]), pvcagg.IntCell(row[2]))
	}
	db.Add(ps)
	p1 := pvcagg.NewRelation("P1", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	for i, row := range [][2]int64{{1, 4}, {2, 8}, {3, 7}, {4, 6}} {
		v := fmt.Sprintf("z%d", i+1)
		db.Registry.DeclareBool(v, p)
		p1.MustInsert(pvcagg.MustParseExpr(v), pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]))
	}
	db.Add(p1)
	p2 := pvcagg.NewRelation("P2", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	db.Registry.DeclareBool("z5", p)
	p2.MustInsert(pvcagg.MustParseExpr("z5"), pvcagg.IntCell(1), pvcagg.IntCell(5))
	db.Add(p2)
	return db
}

// figure1Q2 is the running-example query Q2: shops whose most expensive
// offered product costs at most 50.
func figure1Q2() pvcagg.Plan {
	q1 := &pvcagg.Project{
		Cols: []string{"shop", "price"},
		Input: &pvcagg.Join{
			L: &pvcagg.Join{L: &pvcagg.Scan{Table: "S"}, R: &pvcagg.Scan{Table: "PS"}},
			R: &pvcagg.Union{L: &pvcagg.Scan{Table: "P1"}, R: &pvcagg.Scan{Table: "P2"}},
		},
	}
	return &pvcagg.Project{
		Cols: []string{"shop"},
		Input: &pvcagg.Select{
			Pred: pvcagg.Where(pvcagg.ColTheta("P", pvcagg.LE, pvcagg.IntCell(50))),
			Input: &pvcagg.GroupAgg{
				Input:   q1,
				GroupBy: []string{"shop"},
				Aggs:    []pvcagg.AggSpec{{Out: "P", Agg: pvcagg.MAX, Over: "price"}},
			},
		},
	}
}

// TestGoldenFigure1Approx pins the anytime engine's behaviour on Figure 1
// Q2 at ε ∈ {0, 0.01, 0.1}. MaxLeafNodes is deliberately tiny so the
// priority frontier does real work (the Gap/M&S annotations are otherwise
// closed exactly at the first probe).
func TestGoldenFigure1Approx(t *testing.T) {
	type tupleGold struct {
		lo, hi     float64
		expansions int
		treeNodes  int
		exactNodes int
	}
	golden := map[float64][]tupleGold{
		// Tuple 0 is ⟨Gap⟩, tuple 1 is ⟨M&S⟩ (results sort by key).
		0: {
			{lo: 0.26953125, hi: 0.26953125, expansions: 0, treeNodes: 0, exactNodes: 57},
			{lo: 0.44317626953125, hi: 0.44317626953125, expansions: 0, treeNodes: 0, exactNodes: 318},
		},
		0.01: {
			{lo: 0.26953125, hi: 0.26953125, expansions: 16, treeNodes: 33, exactNodes: 58},
			{lo: 0.4356689453125, hi: 0.4454345703125, expansions: 216, treeNodes: 433, exactNodes: 386},
		},
		0.1: {
			{lo: 0.234375, hi: 0.328125, expansions: 13, treeNodes: 27, exactNodes: 39},
			{lo: 0.37646484375, hi: 0.47607421875, expansions: 128, treeNodes: 257, exactNodes: 307},
		},
	}
	db := figure1ShopDB(0.5)
	for _, eps := range []float64{0, 0.01, 0.1} {
		_, results, _, err := pvcagg.RunApprox(db, figure1Q2(),
			pvcagg.ApproxOptions{Eps: eps, MaxLeafNodes: 8},
			pvcagg.ParallelOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		want := golden[eps]
		if len(results) != len(want) {
			t.Fatalf("eps=%g: %d result tuples, want %d", eps, len(results), len(want))
		}
		for i, w := range want {
			r := results[i]
			if math.Abs(r.Confidence.Lo-w.lo) > 1e-12 || math.Abs(r.Confidence.Hi-w.hi) > 1e-12 {
				t.Errorf("eps=%g tuple %d: bounds %v, want [%.17g, %.17g]", eps, i, r.Confidence, w.lo, w.hi)
			}
			if eps > 0 && r.Confidence.Width() > eps {
				t.Errorf("eps=%g tuple %d: width %v exceeds eps", eps, i, r.Confidence.Width())
			}
			if r.Report.Expansions != w.expansions {
				t.Errorf("eps=%g tuple %d: %d expansions, want %d (frontier heuristic changed?)",
					eps, i, r.Report.Expansions, w.expansions)
			}
			if r.Report.TreeNodes != w.treeNodes || r.Report.ExactNodes != w.exactNodes {
				t.Errorf("eps=%g tuple %d: tree/exact nodes %d/%d, want %d/%d",
					eps, i, r.Report.TreeNodes, r.Report.ExactNodes, w.treeNodes, w.exactNodes)
			}
			if !r.Report.Converged {
				t.Errorf("eps=%g tuple %d: not converged", eps, i)
			}
		}
	}
}

// TestGoldenTPCHQ1Approx pins the anytime engine on TPC-H Q1 (SF 0.0005):
// every group annotation closes exactly within the default per-leaf
// budget, so all widths are 0 at every ε with no frontier expansion —
// Q1's hardness lives in its [SUM ≤ c] selection, which pruning caps.
func TestGoldenTPCHQ1Approx(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.0005, Seed: 1, Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 0.01, 0.1} {
		_, results, _, err := pvcagg.RunApprox(db, tpch.Q1(1200),
			pvcagg.ApproxOptions{Eps: eps}, pvcagg.ParallelOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		if len(results) != 6 {
			t.Fatalf("eps=%g: %d result tuples, want 6", eps, len(results))
		}
		totalExact, totalExpansions := 0, 0
		for i, r := range results {
			if w := r.Confidence.Width(); w != 0 {
				t.Errorf("eps=%g tuple %d: width %v, want 0 (exact closure)", eps, i, w)
			}
			if !r.Report.Converged {
				t.Errorf("eps=%g tuple %d: not converged", eps, i)
			}
			totalExact += r.Report.ExactNodes
			totalExpansions += r.Report.Expansions
		}
		if totalExpansions != 0 {
			t.Errorf("eps=%g: %d frontier expansions, want 0", eps, totalExpansions)
		}
		if totalExact != 2790 {
			t.Errorf("eps=%g: %d closure d-tree nodes, want 2790", eps, totalExact)
		}
		if p := results[0].Confidence.Lo; math.Abs(p-1) > 1e-9 {
			t.Errorf("eps=%g: first tuple confidence %v, want ≈ 1", eps, p)
		}
	}
}

package pvcagg_test

import (
	"math"
	"testing"

	"pvcagg"
)

// The quick-start from the package documentation.
func TestQuickStart(t *testing.T) {
	reg := pvcagg.NewRegistry()
	reg.DeclareBool("x", 0.5)
	reg.DeclareBool("y", 0.5)
	p := pvcagg.NewPipeline(pvcagg.Boolean, reg)
	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")
	d, rep, err := p.Distribution(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.P(pvcagg.BoolV(true)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P[⊤] = %v, want 0.5 (y is pruned)", got)
	}
	if rep.Tree.Nodes == 0 {
		t.Errorf("report empty")
	}
}

func TestFacadeDatabaseRoundTrip(t *testing.T) {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	r := pvcagg.NewRelation("R", pvcagg.Schema{
		{Name: "k", Type: pvcagg.TValue},
		{Name: "v", Type: pvcagg.TValue},
	})
	for i := int64(0); i < 4; i++ {
		if _, err := db.InsertIndependent(r, 0.5, pvcagg.IntCell(i%2), pvcagg.IntCell(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(r)
	plan := &pvcagg.GroupAgg{
		Input:   &pvcagg.Scan{Table: "R"},
		GroupBy: []string{"k"},
		Aggs:    []pvcagg.AggSpec{{Out: "total", Agg: pvcagg.SUM, Over: "v"}},
	}
	rel, results, timing, err := pvcagg.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || len(results) != 2 {
		t.Fatalf("result size %d", rel.Len())
	}
	for _, res := range results {
		if math.Abs(res.Confidence-0.75) > 1e-12 {
			t.Errorf("confidence = %v, want 0.75", res.Confidence)
		}
	}
	if timing.Construct <= 0 {
		t.Errorf("timing missing")
	}
	v := pvcagg.Classify(plan, db)
	if v.Class != pvcagg.Qhie {
		t.Errorf("classification = %v (%s), want Qhie", v.Class, v.Reason)
	}
}

func TestFacadeBaselinesAgree(t *testing.T) {
	reg := pvcagg.NewRegistry()
	reg.DeclareBool("a", 0.3)
	reg.DeclareBool("b", 0.6)
	e := pvcagg.MustParseExpr("a*b + a")
	exact, err := pvcagg.Enumerate(e, reg, pvcagg.Boolean)
	if err != nil {
		t.Fatal(err)
	}
	p := pvcagg.NewPipeline(pvcagg.Boolean, reg)
	compiled, _, err := p.Distribution(e)
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.Equal(exact, 1e-12) {
		t.Errorf("pipeline %v vs enumeration %v", compiled, exact)
	}
	mc, err := pvcagg.MonteCarlo(e, reg, pvcagg.Boolean, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Equal(exact, 0.02) {
		t.Errorf("Monte Carlo too far: %v vs %v", mc, exact)
	}
}

// The "Parallel execution" example from the package documentation: the
// parallel entry points return the same probabilities as the sequential
// ones.
func TestFacadeParallel(t *testing.T) {
	reg := pvcagg.NewRegistry()
	reg.DeclareBool("x", 0.5)
	reg.DeclareBool("y", 0.5)
	p := pvcagg.NewPipeline(pvcagg.Boolean, reg)
	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")
	seq, _, err := p.Distribution(e)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := p.DistributionParallel(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(seq, 1e-12) {
		t.Errorf("parallel %v != sequential %v", par, seq)
	}

	db := pvcagg.NewDatabase(pvcagg.Boolean)
	r := pvcagg.NewRelation("R", pvcagg.Schema{
		{Name: "a", Type: pvcagg.TValue},
		{Name: "b", Type: pvcagg.TValue},
	})
	for i := int64(0); i < 6; i++ {
		db.Registry.DeclareBool(
			r.Name+"_v"+string(rune('a'+i)), 0.5)
		r.MustInsert(pvcagg.MustParseExpr(r.Name+"_v"+string(rune('a'+i))),
			pvcagg.IntCell(i%2), pvcagg.IntCell(i*10))
	}
	db.Add(r)
	plan := &pvcagg.GroupAgg{
		Input:   &pvcagg.Scan{Table: "R"},
		GroupBy: []string{"a"},
		Aggs:    []pvcagg.AggSpec{{Out: "S", Agg: pvcagg.SUM, Over: "b"}},
	}
	_, seqRes, _, err := pvcagg.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	_, parRes, _, err := pvcagg.RunParallel(db, plan, pvcagg.ParallelOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(parRes) != len(seqRes) {
		t.Fatalf("%d parallel results, want %d", len(parRes), len(seqRes))
	}
	for i := range seqRes {
		if math.Abs(parRes[i].Confidence-seqRes[i].Confidence) > 1e-12 {
			t.Errorf("tuple %d: confidence %v != %v", i, parRes[i].Confidence, seqRes[i].Confidence)
		}
		for j := range seqRes[i].AggDists {
			if !parRes[i].AggDists[j].Equal(seqRes[i].AggDists[j], 1e-12) {
				t.Errorf("tuple %d agg %d: %v != %v", i, j, parRes[i].AggDists[j], seqRes[i].AggDists[j])
			}
		}
	}
}

// The "Approximate computation" example from the package documentation:
// anytime bounds bracket the exact probability, end to end.
func TestFacadeApproximate(t *testing.T) {
	reg := pvcagg.NewRegistry()
	reg.DeclareBool("x", 0.5)
	reg.DeclareBool("y", 0.5)
	e := pvcagg.MustParseExpr("[min(x @min 10, y @min 20) <= 15]")
	b, rep, err := pvcagg.Approximate(e, reg, pvcagg.Boolean, pvcagg.ApproxOptions{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(0.5, 1e-12) {
		t.Errorf("bounds %v do not contain the exact probability 0.5", b)
	}
	if !rep.Converged || b.Width() > 0.01 {
		t.Errorf("not converged to width ≤ 0.01: %v (converged=%v)", b, rep.Converged)
	}

	db := pvcagg.NewDatabase(pvcagg.Boolean)
	r := pvcagg.NewRelation("R", pvcagg.Schema{
		{Name: "k", Type: pvcagg.TValue},
		{Name: "v", Type: pvcagg.TValue},
	})
	for i := int64(0); i < 4; i++ {
		if _, err := db.InsertIndependent(r, 0.5, pvcagg.IntCell(i%2), pvcagg.IntCell(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(r)
	plan := &pvcagg.GroupAgg{
		Input:   &pvcagg.Scan{Table: "R"},
		GroupBy: []string{"k"},
		Aggs:    []pvcagg.AggSpec{{Out: "total", Agg: pvcagg.SUM, Over: "v"}},
	}
	_, exact, _, err := pvcagg.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	_, approx, _, err := pvcagg.RunApprox(db, plan, pvcagg.ApproxOptions{Eps: 0.05}, pvcagg.ParallelOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != len(exact) {
		t.Fatalf("%d approx results, want %d", len(approx), len(exact))
	}
	for i := range exact {
		if !approx[i].Confidence.Contains(exact[i].Confidence, 1e-12) {
			t.Errorf("tuple %d: exact confidence %v outside bounds %v",
				i, exact[i].Confidence, approx[i].Confidence)
		}
		if approx[i].Confidence.Width() > 0.05 {
			t.Errorf("tuple %d: width %v > eps", i, approx[i].Confidence.Width())
		}
	}
}

func TestFacadeGenerator(t *testing.T) {
	inst, err := pvcagg.Generate(pvcagg.GenParams{
		L: 4, NumVars: 5, NumClauses: 2, NumLiterals: 2,
		MaxV: 10, AggL: pvcagg.MIN, Theta: pvcagg.LE, C: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pvcagg.NewPipeline(pvcagg.Boolean, inst.Registry)
	if _, _, err := p.Distribution(inst.Expr); err != nil {
		t.Fatal(err)
	}
}

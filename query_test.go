package pvcagg_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pvcagg"
	"pvcagg/internal/tpch"
)

// This file is the PVQL acceptance suite: the two paper queries (TPC-H
// Q1 and Figure 1 Q2) expressed in PVQL must produce bit-for-bit
// identical Results — confidences, aggregation distributions and
// strategy verdicts — to their hand-built engine.Plan equivalents.

const tpchQ1PVQL = `
  SELECT l_returnflag, l_linestatus, COUNT(*) AS count_order
  FROM lineitem
  WHERE l_shipdate <= 1200
  GROUP BY l_returnflag, l_linestatus`

const figure1Q2PVQL = `
  SELECT shop FROM (
    SELECT shop, MAX(price) AS P FROM (
      SELECT shop, price FROM S JOIN PS JOIN (SELECT * FROM P1 UNION SELECT * FROM P2)
    ) GROUP BY shop
  ) WHERE P <= 50`

// assertSameResults runs both executions to completion and compares
// outcome-by-outcome at tolerance 0.
func assertSameResults(t *testing.T, want, got *pvcagg.Result) {
	t.Helper()
	if want.Strategy.Chosen != got.Strategy.Chosen {
		t.Fatalf("strategies differ: %v vs %v", want.Strategy, got.Strategy)
	}
	wv, gv := want.Strategy.Verdict, got.Strategy.Verdict
	if (wv == nil) != (gv == nil) || (wv != nil && *wv != *gv) {
		t.Fatalf("verdicts differ: %v vs %v", wv, gv)
	}
	wOuts, err := want.Collect()
	if err != nil {
		t.Fatal(err)
	}
	gOuts, err := got.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(wOuts) != len(gOuts) {
		t.Fatalf("tuple counts differ: %d vs %d", len(wOuts), len(gOuts))
	}
	for i := range wOuts {
		if wOuts[i].Tuple.Key() != gOuts[i].Tuple.Key() {
			t.Fatalf("tuple %d differs: %s vs %s", i, wOuts[i].Tuple.Key(), gOuts[i].Tuple.Key())
		}
		if wOuts[i].Confidence != gOuts[i].Confidence {
			t.Fatalf("tuple %d confidence differs: %v vs %v", i, wOuts[i].Confidence, gOuts[i].Confidence)
		}
		if len(wOuts[i].AggDists) != len(gOuts[i].AggDists) {
			t.Fatalf("tuple %d aggregate count differs", i)
		}
		for j := range wOuts[i].AggDists {
			if !wOuts[i].AggDists[j].Equal(gOuts[i].AggDists[j], 0) {
				t.Fatalf("tuple %d aggregate %d differs:\n%v\n%v", i, j, wOuts[i].AggDists[j], gOuts[i].AggDists[j])
			}
		}
	}
}

func TestExecQueryTPCHQ1BitForBit(t *testing.T) {
	// p = 0.9 tuple marginals: non-dyadic floats, so this also pins that
	// the optimizer's rewrites on Q1 (predicate placement, scan pruning)
	// preserve the annotation expressions exactly, not just numerically.
	db, err := tpch.Generate(tpch.Config{SF: 0.001, Seed: 1, Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, mode := range []pvcagg.Option{
		pvcagg.WithMode(pvcagg.Auto),
		pvcagg.WithMode(pvcagg.Exact),
	} {
		want, err := pvcagg.Exec(ctx, db, tpch.Q1(1200), mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pvcagg.ExecQuery(ctx, db, tpchQ1PVQL, mode)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, want, got)
	}
}

func TestExecQueryFigure1Q2BitForBit(t *testing.T) {
	db := figure1ShopDB(0.5)
	ctx := context.Background()
	// Auto routes Q2 identically for both plans (verdict compared), and
	// the anytime bounds — expansion-order sensitive — must also agree,
	// which pins that the optimizer left Q2's annotation expressions
	// untouched.
	for _, mode := range []pvcagg.Option{
		pvcagg.WithMode(pvcagg.Auto),
		pvcagg.WithMode(pvcagg.Exact),
	} {
		want, err := pvcagg.Exec(ctx, db, figure1Q2(), mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pvcagg.ExecQuery(ctx, db, figure1Q2PVQL, mode)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, want, got)
	}
}

func TestExecQuerySampleMode(t *testing.T) {
	db := figure1ShopDB(0.5)
	ctx := context.Background()
	want, err := pvcagg.Exec(ctx, db, figure1Q2(), pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(7), pvcagg.WithSamples(500))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pvcagg.ExecQuery(ctx, db, figure1Q2PVQL, pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(7), pvcagg.WithSamples(500))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, want, got)
}

func TestExecQueryErrors(t *testing.T) {
	db := figure1ShopDB(0.5)
	ctx := context.Background()
	for _, c := range []struct{ src, frag string }{
		{"SELECT", "expected a column"},
		{"SELECT * FROM missing", `unknown table "missing"`},
		{"SELECT nope FROM S", `unknown column "nope"`},
	} {
		_, err := pvcagg.ExecQuery(ctx, db, c.src)
		if err == nil {
			t.Fatalf("ExecQuery(%q) succeeded", c.src)
		}
		var qe *pvcagg.QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("ExecQuery(%q) returned %T, want *QueryError", c.src, err)
		}
		if !strings.Contains(qe.Msg, c.frag) {
			t.Fatalf("ExecQuery(%q) = %q, want %q", c.src, qe.Msg, c.frag)
		}
		if r := qe.Render(c.src); !strings.Contains(r, "^") {
			t.Fatalf("Render missing caret: %q", r)
		}
	}
}

func TestParsePlanFacade(t *testing.T) {
	db := figure1ShopDB(0.5)
	plan, err := pvcagg.ParseQuery(db, figure1Q2PVQL)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pvcagg.ParsePlan(plan.String())
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", plan.String(), err)
	}
	if rt.String() != plan.String() {
		t.Fatalf("round trip drift:\n%s\n%s", plan, rt)
	}
	if est := pvcagg.EstimateCardinality(&pvcagg.Scan{Table: "PS"}, db); est != 9 {
		t.Fatalf("EstimateCardinality(PS) = %v, want 9", est)
	}
}

// TestParseQueryConcurrent: the query service parses, binds and optimizes
// the same PVQL text from many goroutines against one database (a cold
// plan-cache stampede). Each goroutine must produce the same optimized
// plan with no data race — run under -race in the service CI job. The
// optimizer's Estimator memoises table statistics; this pins that
// concurrent optimization passes over one database are safe.
func TestParseQueryConcurrent(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.0005, Seed: 1, Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pvcagg.ParseQuery(db, tpchQ1PVQL)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 25; round++ {
				p, err := pvcagg.ParseQuery(db, tpchQ1PVQL)
				if err != nil {
					errs <- err
					return
				}
				if p.String() != want.String() {
					errs <- fmt.Errorf("optimized plan differs across goroutines:\n%s\n%s", p, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

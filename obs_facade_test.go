package pvcagg_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"pvcagg"
	"pvcagg/internal/tpch"
)

// Facade-level observability: trace determinism across parallelism, and
// the EXPLAIN ANALYZE golden over TPC-H Q1 on both eval paths.

// normalizeSpans renders a span tree down to what must be
// deterministic: names, structure, and counter attributes. Durations
// and allocation deltas vary run to run; the parallelism attribute is
// the independent variable of the determinism test.
func normalizeSpans(spans []pvcagg.SpanView) string {
	var b strings.Builder
	var walk func(s pvcagg.SpanView, depth int)
	walk = func(s pvcagg.SpanView, depth int) {
		fmt.Fprintf(&b, "%*s%s", 2*depth, "", s.Name)
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			if k != "parallelism" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, s.Attrs[k])
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, s := range spans {
		walk(s, 0)
	}
	return b.String()
}

// TestTraceDeterminism: the span tree — names, nesting, and every
// counter attribute (memo hits, d-tree nodes, rows, tuples) — is
// identical at Parallelism 1 and 4, because all trace counters are
// order-independent sums. Only wall time and allocation may differ.
func TestTraceDeterminism(t *testing.T) {
	db, plan := execTestDB(t)
	const q = "SELECT k, COUNT(*) AS n FROM R GROUP BY k"
	_ = plan
	var got [2]string
	for i, par := range []int{1, 4} {
		tr := pvcagg.NewTrace()
		res, err := pvcagg.ExecQuery(context.Background(), db, q,
			pvcagg.WithMode(pvcagg.Exact), pvcagg.WithParallelism(par), pvcagg.WithTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.Collect(); err != nil {
			t.Fatal(err)
		}
		if res.Report.Trace != tr {
			t.Fatal("ExecReport.Trace is not the WithTrace pointer")
		}
		got[i] = normalizeSpans(tr.Spans())
	}
	if got[0] != got[1] {
		t.Errorf("trace differs between Parallelism 1 and 4:\n--- p=1\n%s--- p=4\n%s", got[0], got[1])
	}
	// And it contains the stage spans with live counters.
	for _, want := range []string{"parse\n", "bind\n", "optimize\n", "exec", "eval rows=", "probability", "tuples="} {
		if !strings.Contains(got[0], want) {
			t.Errorf("normalized trace lacks %q:\n%s", want, got[0])
		}
	}
}

// TestTraceOffIsAbsent: without WithTrace, no trace is reported.
func TestTraceOffIsAbsent(t *testing.T) {
	db, plan := execTestDB(t)
	res, err := pvcagg.Exec(context.Background(), db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Collect(); err != nil {
		t.Fatal(err)
	}
	if res.Report.Trace != nil {
		t.Error("Report.Trace non-nil without WithTrace")
	}
	if res.Report.Explain != nil {
		t.Error("Report.Explain non-nil without WithExplainAnalyze")
	}
}

// TestExplainAnalyzeGoldenTPCHQ1 pins the per-operator actual row
// counts of TPC-H Q1 (SF 0.0005, seed 1) through both eval paths
// against cardinalities computed independently from the generated
// data: the scan sees every lineitem row, the σ passes exactly the
// rows with l_shipdate ≤ 1200, and the aggregation yields one row per
// (l_returnflag, l_linestatus) group among them.
func TestExplainAnalyzeGoldenTPCHQ1(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{SF: 0.0005, Seed: 1, Probabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	shipdateIdx, flagIdx, statusIdx := -1, -1, -1
	for i, c := range rel.Schema {
		switch c.Name {
		case "l_shipdate":
			shipdateIdx = i
		case "l_returnflag":
			flagIdx = i
		case "l_linestatus":
			statusIdx = i
		}
	}
	if shipdateIdx < 0 || flagIdx < 0 || statusIdx < 0 {
		t.Fatalf("lineitem schema lacks Q1 columns: %v", rel.Schema)
	}
	total := int64(rel.Len())
	var filtered int64
	groups := map[string]bool{}
	for _, tu := range rel.Tuples {
		if v := tu.Cells[shipdateIdx].Value(); v.IsInt() && v.Int64() <= 1200 {
			filtered++
			groups[tu.Cells[flagIdx].String()+"|"+tu.Cells[statusIdx].String()] = true
		}
	}
	if total == 0 || filtered == 0 || filtered == total || len(groups) == 0 {
		t.Fatalf("degenerate golden inputs: total=%d filtered=%d groups=%d", total, filtered, len(groups))
	}

	for _, path := range []pvcagg.EvalPath{pvcagg.StreamingEval, pvcagg.MaterializedEval} {
		res, err := pvcagg.Exec(context.Background(), db, tpch.Q1(1200),
			pvcagg.WithMode(pvcagg.Exact), pvcagg.WithEvalPath(path), pvcagg.WithExplainAnalyze())
		if err != nil {
			t.Fatalf("%v: %v", path, err)
		}
		outs, err := res.Collect()
		if err != nil {
			t.Fatalf("%v: %v", path, err)
		}
		ex := res.Report.Explain
		if ex == nil {
			t.Fatalf("%v: no Explain tree", path)
		}
		// Shape: $ → σ → scan(lineitem).
		if ex.Op != "$" || len(ex.Children) != 1 {
			t.Fatalf("%v: root %q with %d children, want $ with 1", path, ex.Op, len(ex.Children))
		}
		sel := ex.Children[0]
		if sel.Op != "σ" || len(sel.Children) != 1 {
			t.Fatalf("%v: mid %q with %d children, want σ with 1", path, sel.Op, len(sel.Children))
		}
		scan := sel.Children[0]
		if scan.Op != "scan" || scan.Name != "lineitem" {
			t.Fatalf("%v: leaf %s(%s), want scan(lineitem)", path, scan.Op, scan.Name)
		}
		if got, want := ex.ActualRows, int64(len(groups)); got != want {
			t.Errorf("%v: $ actual=%d, want %d groups", path, got, want)
		}
		if int64(len(outs)) != ex.ActualRows {
			t.Errorf("%v: %d result tuples but root actual=%d", path, len(outs), ex.ActualRows)
		}
		if sel.ActualRows != filtered {
			t.Errorf("%v: σ actual=%d, want %d (l_shipdate ≤ 1200)", path, sel.ActualRows, filtered)
		}
		if scan.ActualRows != total {
			t.Errorf("%v: scan actual=%d, want %d lineitem rows", path, scan.ActualRows, total)
		}
		if scan.EstRows != float64(total) {
			t.Errorf("%v: scan est=%v, want %d (table statistics are exact)", path, scan.EstRows, total)
		}
		for _, n := range []*pvcagg.ExplainNode{ex, sel, scan} {
			if n.TimeUS < 0 {
				t.Errorf("%v: %s has negative time %dµs", path, n.Op, n.TimeUS)
			}
		}
	}
}

// TestExecQueryExplainPrefix: the EXPLAIN prefix through the text
// frontend returns the estimate-only tree without executing.
func TestExecQueryExplainPrefix(t *testing.T) {
	db, _ := execTestDB(t)
	res, err := pvcagg.ExecQuery(context.Background(), db, "EXPLAIN SELECT k, COUNT(*) AS n FROM R GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Errorf("EXPLAIN executed: %d tuples", len(outs))
	}
	ex := res.Report.Explain
	if ex == nil {
		t.Fatal("EXPLAIN returned no tree")
	}
	if ex.ActualRows != -1 {
		t.Errorf("EXPLAIN root actual=%d, want -1 (not executed)", ex.ActualRows)
	}
}

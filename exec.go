package pvcagg

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"math/rand"
	"time"

	"pvcagg/internal/algebra"
	"pvcagg/internal/compile"
	"pvcagg/internal/core"
	"pvcagg/internal/engine"
	"pvcagg/internal/expr"
	"pvcagg/internal/obs"
	"pvcagg/internal/store"
	"pvcagg/internal/tractable"
	"pvcagg/internal/worlds"
)

// KindSemiring and KindModule name the two expression sorts of the
// paper's language (semiring annotations vs semimodule aggregation
// values), re-exported so callers can dispatch ExecExpr results.
const (
	KindSemiring = expr.KindSemiring
	KindModule   = expr.KindModule
)

// This file is the unified execution API: one context-aware entrypoint
// (Exec for plans, ExecTable for already-evaluated pvc-tables, ExecExpr
// for bare expressions) configured by functional options, with adaptive
// strategy selection (Auto mode routes through the Section 6 tractability
// analysis) and streaming results.

// Mode selects the execution strategy.
type Mode int

const (
	// Auto picks the strategy per query: Classify routes tractable plans
	// (Qind/Qhie) to the exact engine and hard plans to the anytime
	// engine at the configured ε (DefaultEps unless WithEps is given).
	// On an already-evaluated pvc-table there is no plan to analyse, so
	// Auto selects the anytime engine, whose exact leaf closures resolve
	// easy annotations to zero-width bounds anyway; on a bare expression
	// it probes exact compilation under a node budget and falls back to
	// the anytime engine if the budget is exceeded.
	Auto Mode = iota
	// Exact computes every confidence and distribution exactly by full
	// d-tree compilation (exponential on hard queries; bound it with
	// WithCompileBudget).
	Exact
	// Anytime brackets every confidence within ε by partial d-tree
	// expansion with guaranteed bounds; aggregation-column distributions
	// stay exact.
	Anytime
	// Sample estimates every confidence from explicitly-seeded Monte
	// Carlo worlds with a 95% Hoeffding interval. Unlike Anytime's, the
	// interval is statistical: it contains the exact confidence with
	// probability ≥ 95%, not always. Requires WithSeed.
	Sample
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "Auto"
	case Exact:
		return "Exact"
	case Anytime:
		return "Anytime"
	case Sample:
		return "Sample"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// EvalPath selects the physical execution layer for step I (plan
// evaluation). Both paths produce bit-for-bit identical result
// pvc-tables — tuples, annotations and aggregation expressions — so the
// choice only affects time and memory.
type EvalPath int

const (
	// StreamingEval (the default) evaluates plans through the pull
	// iterator layer: σ/π̂/δ are fully pipelined, ⋈/× materialize only
	// the hash-join build side, and π/∪/$ group incrementally — no
	// operator buffers its whole input relation.
	StreamingEval EvalPath = iota
	// MaterializedEval evaluates every operator into a full intermediate
	// relation (the classic Plan.Eval path) — the differential safety
	// net, and occasionally faster on tiny inputs.
	MaterializedEval
)

func (p EvalPath) String() string {
	switch p {
	case StreamingEval:
		return "streaming"
	case MaterializedEval:
		return "materialized"
	default:
		return fmt.Sprintf("EvalPath(%d)", int(p))
	}
}

// WithEvalPath selects the step-I physical execution layer (default
// StreamingEval). Results are identical through both paths; use
// MaterializedEval to pin the legacy evaluator, e.g. when bisecting a
// suspected streaming issue or benchmarking the ablation.
func WithEvalPath(p EvalPath) Option {
	return func(c *execConfig) { c.evalPath = p }
}

// DefaultEps is the anytime target bound width used by Auto and Anytime
// when WithEps is not given, so selecting the anytime engine never
// silently degenerates to exact compilation.
const DefaultEps = 0.01

// DefaultSamples is the Monte Carlo sample count used by Sample mode when
// WithSamples is not given.
const DefaultSamples = 10_000

// autoExprBudget is Auto's exact-compilation probe budget for bare
// expressions (ExecExpr) when no WithCompileBudget is given: expressions
// whose d-tree stays under it run exactly; larger ones fall back to the
// anytime engine.
const autoExprBudget = 1 << 18

// TupleOutcome is the unified per-tuple result: interval confidence
// (zero-width for exact strategies), exact aggregation-column
// distributions, and the per-tuple cost report.
type TupleOutcome = engine.TupleOutcome

// TupleReport is the per-tuple cost report across strategies.
type TupleReport = engine.TupleReport

// PanicError is a panic recovered inside an engine worker goroutine,
// converted to a typed per-tuple error; the other tuples of the batch
// are unaffected and the process survives.
type PanicError = engine.PanicError

// IsPanic reports whether err is (or wraps) a contained worker panic.
func IsPanic(err error) bool { return engine.IsPanic(err) }

// Option configures Exec, ExecTable and ExecExpr.
type Option func(*execConfig)

type execConfig struct {
	mode       Mode
	eps        float64
	epsSet     bool
	par        int
	compile    CompileOptions
	compileSet bool
	budget     int
	approx     ApproxOptions
	approxSet  bool
	timeout    time.Duration
	timeoutSet bool
	onBounds   func(Bounds)
	seed       int64
	seedSet    bool
	samples    int
	samplesSet bool
	failFast   bool
	shared     bool
	ext        *compile.SharedCache
	evalPath   EvalPath
	store      *Store
	retry      RetryPolicy
	retrySet   bool
	trace      *obs.Trace
	analyze    bool
}

// resolveDB reconciles the database argument with WithStore: a nil db
// resolves to the store's database, the store's own DB() passes through,
// and any other non-nil db is a contradiction.
func (c *execConfig) resolveDB(db *Database) (*Database, error) {
	if c.store == nil {
		return db, nil
	}
	if db == nil || db == c.store.db {
		return c.store.db, nil
	}
	return nil, errors.New("pvcagg: WithStore conflicts with a different non-nil database; pass nil (or the store's DB()) to run against the store")
}

// failFastOpt restores the legacy sequential error contract (stop at the
// first failing tuple, return its error alone) for the deprecated
// Run/RunWithOptions wrappers. Unexported: new code gets the joined
// every-failure-reported semantics.
func failFastOpt() Option { return func(c *execConfig) { c.failFast = true } }

// WithMode selects the execution strategy (default Auto).
func WithMode(m Mode) Option { return func(c *execConfig) { c.mode = m } }

// WithEps sets the anytime target bound width: every tuple's confidence
// interval converges to width ≤ ε, budgets permitting. Only meaningful
// with Auto and Anytime.
func WithEps(eps float64) Option {
	return func(c *execConfig) { c.eps, c.epsSet = eps, true }
}

// WithParallelism bounds the number of goroutines doing compilation and
// evaluation work, across tuples and inside tuples combined. n <= 0
// selects runtime.GOMAXPROCS(0) (the default); n == 1 runs sequentially.
func WithParallelism(n int) Option { return func(c *execConfig) { c.par = n } }

// WithCompileBudget aborts any exact compilation whose d-tree exceeds
// maxNodes, turning runaway Shannon expansions into errors (under Exact)
// or anytime fallbacks (under Auto on expressions).
func WithCompileBudget(maxNodes int) Option {
	return func(c *execConfig) { c.budget = maxNodes }
}

// WithCompileOptions sets the full exact-compilation options (ablations
// and budgets) used for annotations under Exact and for aggregation
// columns under every strategy.
func WithCompileOptions(o CompileOptions) Option {
	return func(c *execConfig) { c.compile, c.compileSet = o, true }
}

// WithApprox sets the full anytime options (leaf budgets, expansion and
// node budgets, per-tuple timeout). WithEps and WithOnBounds override the
// corresponding fields.
func WithApprox(o ApproxOptions) Option {
	return func(c *execConfig) { c.approx, c.approxSet = o, true }
}

// WithTimeout cancels the whole execution — plan evaluation and every
// in-flight compilation — after d, as if the caller's context had been
// cancelled. (ApproxOptions.Timeout, by contrast, is a per-tuple anytime
// budget that returns sound unconverged bounds.)
func WithTimeout(d time.Duration) Option {
	return func(c *execConfig) { c.timeout, c.timeoutSet = d, true }
}

// WithOnBounds observes per-tuple confidence bounds as they are computed:
// under the anytime engine after every frontier expansion (a
// monotonically tightening sequence per tuple), under the exact and
// sampling strategies once per tuple with the final interval — so the
// callback reports progress under every strategy, including the exact
// route of an Auto run. With Parallelism > 1 the callback is invoked
// concurrently from multiple tuples and must be safe for concurrent use.
func WithOnBounds(cb func(Bounds)) Option {
	return func(c *execConfig) { c.onBounds = cb }
}

// WithSeed sets the explicit random seed required by the Sample strategy;
// there is no ambient randomness anywhere in the engine, so any estimate
// is reproducible from the logged seed.
func WithSeed(seed int64) Option {
	return func(c *execConfig) { c.seed, c.seedSet = seed, true }
}

// WithSamples sets the Monte Carlo sample count per tuple (default
// DefaultSamples). Only meaningful with Sample.
func WithSamples(n int) Option {
	return func(c *execConfig) { c.samples, c.samplesSet = n, true }
}

// WithSharedCache enables (or, for ablation, explicitly disables) the
// cross-tuple compilation cache: one bounded, shard-striped cache of
// compiled d-tree nodes and their distributions, keyed by structural
// expression hash and shared by every worker of the execution, so
// sub-expressions repeated across a table's tuples compile and evaluate
// once. The cache is scoped to the execution, never shared across Exec
// calls.
//
// Under the exact strategy, probabilities and distributions are
// bit-for-bit identical with the cache on or off at any parallelism
// (cached nodes are structurally identical, so they evaluate to the same
// distributions). What the cache does change is accounting and budgets:
// per-tuple cost reports (TupleReport.Exact) count only the work a tuple
// did itself, and compile node budgets (WithCompileBudget, the anytime
// engine's leaf budgets) count only uncached nodes — so with
// Parallelism > 1, which tuples hit the cache depends on scheduling,
// making per-tuple reports, budget-abort points and anytime bound widths
// (still always sound) run-to-run nondeterministic. Use Parallelism(1)
// with the cache for reproducible reports and anytime bounds. This is
// why the cache defaults to off; the run-level picture lives in
// Result.Report.SharedCache.
func WithSharedCache(enabled bool) Option {
	return func(c *execConfig) { c.shared = enabled }
}

// SharedCache is a cross-query compilation cache: the same bounded,
// shard-striped cache of compiled d-tree nodes and evaluator
// distributions that WithSharedCache scopes to one execution, but owned
// by the caller and handed to many executions over WithCache — the
// long-running query service shares one across every request against a
// database. See compile.SharedCache for the structure and the adaptive
// bail-out.
type SharedCache = compile.SharedCache

// NewSharedCache returns an empty cross-query compilation cache bounded
// to maxEntries compiled nodes (and as many cached distributions);
// maxEntries <= 0 selects the default bound (256k). The cache carries
// the adaptive bail-out: if its consecutive-miss streak ever reaches the
// default threshold it switches itself off for the rest of its life, so
// a long-lived cache that turns out not to help never keeps taxing
// requests.
func NewSharedCache(maxEntries int) *SharedCache {
	return compile.NewSharedCache(maxEntries)
}

// WithCache attaches a caller-owned cross-query compilation cache to the
// execution, so sub-expressions repeated across queries — not just
// across the tuples of one query — compile and evaluate once. It implies
// WithSharedCache(true) and wins over it: when both are given, the
// external cache is used and no per-execution cache is created.
//
// A cache is only coherent for one database (one variable registry): the
// cached d-tree leaves resolve variables by identity, so executing
// against a different database with the same cache computes garbage.
// Swap databases by swapping to a fresh cache — there is deliberately no
// invalidation call; the query service's session swap does exactly this.
// Stats (Result.Report.SharedCache) are cumulative over the cache's
// life, not per-execution. The determinism caveats of WithSharedCache
// apply across requests too: budgets and per-tuple reports depend on
// what earlier queries left in the cache.
func WithCache(cache *SharedCache) Option {
	return func(c *execConfig) {
		c.ext = cache
		c.shared = cache != nil
	}
}

// resolveOptions applies the options and validates their combination,
// rejecting contradictory requests with descriptive errors instead of
// silently picking a semantics (the legacy API's ε = 0 ambiguity).
func resolveOptions(opts []Option) (*execConfig, error) {
	c := &execConfig{mode: Auto, samples: DefaultSamples}
	for _, o := range opts {
		o(c)
	}
	switch c.mode {
	case Auto, Exact, Anytime, Sample:
	default:
		return nil, fmt.Errorf("pvcagg: unknown mode %v", c.mode)
	}
	switch c.evalPath {
	case StreamingEval, MaterializedEval:
	default:
		return nil, fmt.Errorf("pvcagg: unknown eval path %v", c.evalPath)
	}
	if c.epsSet && (c.eps < 0 || c.eps >= 1 || math.IsNaN(c.eps)) {
		return nil, fmt.Errorf("pvcagg: epsilon %v out of range [0, 1)", c.eps)
	}
	if c.epsSet && c.approxSet && c.approx.Eps != 0 && c.approx.Eps != c.eps {
		return nil, fmt.Errorf("pvcagg: epsilon specified twice: WithEps(%v) and WithApprox{Eps: %v}", c.eps, c.approx.Eps)
	}
	if c.timeoutSet && c.timeout <= 0 {
		return nil, fmt.Errorf("pvcagg: WithTimeout(%v) must be positive", c.timeout)
	}
	if c.budget < 0 {
		return nil, fmt.Errorf("pvcagg: WithCompileBudget(%d) must be non-negative", c.budget)
	}
	if c.budget > 0 && c.compileSet && c.compile.MaxNodes != 0 && c.compile.MaxNodes != c.budget {
		return nil, fmt.Errorf("pvcagg: compile budget specified twice: WithCompileBudget(%d) and WithCompileOptions{MaxNodes: %d}",
			c.budget, c.compile.MaxNodes)
	}
	if c.compileSet && c.approxSet && c.approx.Compile != (CompileOptions{}) && c.approx.Compile != c.compile {
		return nil, errors.New("pvcagg: compile options specified twice: WithCompileOptions and WithApprox{Compile: ...} disagree; set them in one place")
	}
	if c.budget > 0 {
		c.compile.MaxNodes = c.budget
	}
	switch c.mode {
	case Exact:
		if c.epsSet && c.eps > 0 {
			return nil, errors.New("pvcagg: WithEps conflicts with WithMode(Exact): exact execution has no approximation target; use Anytime or Auto")
		}
		if c.approxSet {
			return nil, errors.New("pvcagg: WithApprox conflicts with WithMode(Exact); use Anytime or Auto")
		}
	case Anytime, Auto:
		eps := c.effEps()
		// WithEps was range-checked above; the same bound applies to an ε
		// smuggled in through WithApprox (a negative ε would expand the
		// entire d-tree — full exact cost — and still report unconverged).
		if eps < 0 || eps >= 1 || math.IsNaN(eps) {
			return nil, fmt.Errorf("pvcagg: epsilon %v (from WithApprox) out of range [0, 1)", eps)
		}
		if eps == 0 {
			if c.mode == Auto {
				return nil, errors.New("pvcagg: WithEps(0) conflicts with WithMode(Auto): ε = 0 disables the anytime fallback entirely; use WithMode(Exact), or a positive ε")
			}
			if c.approx.MaxNodes > 0 || c.approx.MaxExpansions > 0 || c.approx.Timeout > 0 {
				return nil, errors.New("pvcagg: contradictory anytime options: ε = 0 requests an exact answer, but a MaxNodes/MaxExpansions/Timeout budget can abandon it before convergence; set a positive ε for budgeted bounds, or use WithMode(Exact) with WithCompileBudget for a hard exact budget")
			}
		}
	case Sample:
		if !c.seedSet {
			return nil, errors.New("pvcagg: WithMode(Sample) requires an explicit WithSeed: the engine has no ambient randomness, so sampled estimates must be reproducible from a logged seed")
		}
		if c.epsSet {
			return nil, errors.New("pvcagg: WithEps conflicts with WithMode(Sample): the sampling error is set by WithSamples, not ε; use Anytime for guaranteed bounds of width ε")
		}
		if c.approxSet {
			return nil, errors.New("pvcagg: WithApprox conflicts with WithMode(Sample)")
		}
		if c.samples <= 0 {
			return nil, fmt.Errorf("pvcagg: WithSamples(%d) must be positive", c.samples)
		}
	}
	if c.seedSet && c.mode != Sample {
		return nil, fmt.Errorf("pvcagg: WithSeed only applies to WithMode(Sample); mode %v has no sampling step", c.mode)
	}
	if c.samplesSet && c.mode != Sample {
		return nil, fmt.Errorf("pvcagg: WithSamples only applies to WithMode(Sample)")
	}
	// The anytime engine's exact leaf closures and the ε = 0 fallback use
	// the same compile options as the aggregation columns; WithApprox's
	// embedded options serve when WithCompileOptions is absent (the shape
	// the legacy RunApprox wrapper produces).
	if !c.compileSet && c.approxSet {
		base := c.approx.Compile
		if c.budget > 0 {
			if base.MaxNodes != 0 && base.MaxNodes != c.budget {
				return nil, fmt.Errorf("pvcagg: compile budget specified twice: WithCompileBudget(%d) and WithApprox{Compile: {MaxNodes: %d}}",
					c.budget, base.MaxNodes)
			}
			base.MaxNodes = c.budget
		}
		c.compile = base
	}
	return c, nil
}

// effEps resolves the anytime target width across WithEps, WithApprox and
// the default.
func (c *execConfig) effEps() float64 {
	if c.epsSet {
		return c.eps
	}
	if c.approxSet {
		return c.approx.Eps
	}
	return DefaultEps
}

// Strategy records how an execution was (or will be) carried out.
type Strategy struct {
	// Requested is the mode the caller asked for.
	Requested Mode
	// Chosen is the strategy that runs — Exact, Anytime or Sample, never
	// Auto.
	Chosen Mode
	// Verdict is the tractability classification that routed an Auto
	// plan execution (nil otherwise).
	Verdict *Verdict
	// Eps is the anytime target bound width (Chosen == Anytime).
	Eps float64
	// Parallelism is the configured worker bound (<= 0 ⇒ GOMAXPROCS).
	Parallelism int
	// Samples and Seed parameterise the sampling strategy (Chosen ==
	// Sample).
	Samples int
	Seed    int64
	// EvalPath is the step-I physical execution layer (streaming by
	// default; see WithEvalPath).
	EvalPath EvalPath
}

func (s Strategy) String() string {
	switch s.Chosen {
	case Anytime:
		if s.Verdict != nil {
			return fmt.Sprintf("anytime(ε=%g; %s)", s.Eps, s.Verdict.Reason)
		}
		return fmt.Sprintf("anytime(ε=%g)", s.Eps)
	case Sample:
		return fmt.Sprintf("sample(n=%d, seed=%d)", s.Samples, s.Seed)
	default:
		if s.Verdict != nil {
			return fmt.Sprintf("exact(%s)", s.Verdict.Reason)
		}
		return "exact"
	}
}

// build resolves the engine configuration for the chosen strategy. When
// WithSharedCache is on, a fresh cross-tuple cache scoped to this
// execution is threaded into the compile options of every strategy (the
// sampling strategy still compiles aggregation columns exactly).
func (c *execConfig) build(chosen Mode, verdict *Verdict) (Strategy, engine.ExecConfig, *compile.SharedCache) {
	strat := Strategy{Requested: c.mode, Chosen: chosen, Verdict: verdict, Parallelism: c.par, EvalPath: c.evalPath}
	var cache *compile.SharedCache
	co := c.compile
	if c.shared {
		if c.ext != nil {
			cache = c.ext
		} else {
			cache = compile.NewSharedCache(0)
		}
		co.Shared = cache
	}
	ecfg := engine.ExecConfig{Compile: co, Parallelism: c.par, OnBounds: c.onBounds, FailFast: c.failFast}
	switch chosen {
	case Anytime:
		a := c.approx
		a.Eps = c.effEps()
		a.Compile = co
		if c.onBounds != nil {
			a.OnBounds = c.onBounds
		}
		ecfg.Approx = &a
		strat.Eps = a.Eps
	case Sample:
		ecfg.Samples = c.samples
		ecfg.Seed = c.seed
		strat.Samples = c.samples
		strat.Seed = c.seed
	}
	return strat, ecfg, cache
}

// WithRetry attaches a per-query retry budget for transient store read
// errors: each failing block read is retried under capped exponential
// backoff with deterministic jitter, drawing on the policy's shared
// budget across every scan the query opens. ErrStoreCorrupt never
// retries (damage does not heal). When the policy allows bounded skips,
// a block that stays unreadable after retries is dropped soundly if its
// annotation summary proves every row is annotated zero — the degraded
// answer can only omit tuples whose confidence is exactly 0, and the
// skip is counted in Report.Store.BoundedBlocks; otherwise the query
// fails with an error matching ErrStorePartial. Zero policy fields take
// defaults (see store.DefaultRetryPolicy). Without WithRetry, scans
// still retry transient blips under a private per-scan default budget,
// but nothing is surfaced in the report and bounded skips are off.
func WithRetry(p RetryPolicy) Option {
	return func(c *execConfig) { c.retry, c.retrySet = p, true }
}

// ErrConsumed is returned when a Result's streaming iterator has already
// been consumed; run Exec again to iterate anew.
var ErrConsumed = errors.New("pvcagg: Result stream already consumed")

// ExecReport aggregates run-level execution statistics that have no
// per-tuple home.
type ExecReport struct {
	// SharedCache reports the cross-tuple compilation cache
	// (WithSharedCache): compiler node hits/misses and evaluator
	// distribution hits/misses. All zeros when the cache is disabled.
	SharedCache CacheStats
	// Store reports what the WithRetry budget actually did: reads that
	// needed retrying, retries spent, operations abandoned, and blocks
	// soundly skipped via their all-zero annotation summaries. All zeros
	// without WithRetry.
	Store RetryStats
	// Trace is the execution trace passed via WithTrace (the same
	// pointer, for convenience); nil when tracing is off.
	Trace *Trace
	// Explain is the analyzed per-operator plan tree (WithExplainAnalyze
	// or the PVQL `EXPLAIN ANALYZE` prefix); nil otherwise.
	Explain *ExplainNode
}

// CacheStats is a snapshot of the cross-tuple cache counters; see
// compile.CacheStats.
type CacheStats = compile.CacheStats

// Result is one execution handed back by Exec or ExecTable: the evaluated
// result pvc-table (step I, already done) and the probability computation
// (step II), which runs on demand — either as an ordered batch (Collect)
// or as a stream that surfaces tuples as workers finish (Results).
type Result struct {
	// Rel is the evaluated result pvc-table, sorted by tuple key.
	Rel *Relation
	// Strategy records the chosen execution strategy, including the
	// tractability verdict that routed an Auto run.
	Strategy Strategy
	// Timing separates step I (Construct, final) from step II
	// (Probability, populated once Collect returns or the stream is
	// consumed).
	Timing RunTiming
	// Report carries run-level statistics, populated once Collect returns
	// or the stream is consumed.
	Report ExecReport

	db       *Database
	cfg      engine.ExecConfig
	cache    *compile.SharedCache
	retry    *store.RetryState
	ctx      context.Context
	cancel   context.CancelFunc
	execSpan *obs.Span // WithTrace: this execution's top-level span
	probSpan *obs.Span // WithTrace: step II span, opened lazily

	collected bool
	streamed  bool
	outcomes  []TupleOutcome
	err       error
}

// Len returns the number of result tuples.
func (r *Result) Len() int { return r.Rel.Len() }

// Close releases the Result's timeout context (WithTimeout) without
// consuming it. Collect and a drained Results call it implicitly;
// calling it is only needed when a WithTimeout Result is abandoned
// before step II — e.g. after inspecting only Rel or Strategy — so its
// timer does not linger until the deadline. Idempotent.
func (r *Result) Close() { r.finish() }

func (r *Result) finish() {
	if r.cache != nil {
		r.Report.SharedCache = r.cache.Stats()
	}
	if r.retry != nil {
		r.Report.Store = r.retry.Snapshot()
	}
	r.probSpan.End()
	if r.execSpan != nil {
		if r.retry != nil {
			s := r.Report.Store
			r.execSpan.SetAttr("store.retry_attempts", s.Attempts)
			r.execSpan.SetAttr("store.retries", s.Retries)
			r.execSpan.SetAttr("store.retries_exhausted", s.Exhausted)
			r.execSpan.SetAttr("store.bounded_blocks", s.BoundedBlocks)
		}
		r.execSpan.End()
		r.execSpan = nil
	}
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
}

// noteOutcome folds one tuple outcome's report counters into the
// probability span. Sums over outcomes are order-independent, so the
// recorded attributes are deterministic at every parallelism.
func (r *Result) noteOutcome(o TupleOutcome) {
	sp := r.probSpan
	if sp == nil {
		return
	}
	sp.Add("tuples", 1)
	sp.Add("memo_hits", int64(o.Report.Exact.Compile.CacheHits))
	sp.Add("shared_hits", int64(o.Report.Exact.Compile.SharedHits))
	sp.Add("dtree_nodes", int64(o.Report.Exact.Compile.Nodes))
	if o.Report.Approx != nil {
		sp.Add("frontier_expansions", int64(o.Report.Approx.Expansions))
	}
	if o.Report.Samples > 0 {
		sp.Add("samples", int64(o.Report.Samples))
	}
}

// Collect computes (or returns the already-computed) outcome of every
// result tuple, in tuple order. Every failing tuple is reported, joined
// into one error; a cancelled context returns ctx.Err().
func (r *Result) Collect() ([]TupleOutcome, error) {
	if r.streamed {
		return nil, ErrConsumed
	}
	if !r.collected {
		r.probSpan = r.execSpan.StartSpan("probability")
		t0 := time.Now()
		r.outcomes, r.err = engine.Outcomes(r.ctx, r.db, r.Rel, r.cfg)
		r.Timing.Probability = time.Since(t0)
		r.collected = true
		for _, o := range r.outcomes {
			r.noteOutcome(o)
		}
		r.finish()
	}
	return r.outcomes, r.err
}

// Results streams tuple outcomes as workers finish — completion order,
// not tuple order (TupleOutcome.Index re-associates them) — so large
// workloads surface answers without a barrier. Per-tuple failures are
// yielded as (zero outcome, error) and the stream continues; breaking out
// cancels the remaining work. The live stream is single-use (ErrConsumed
// afterwards); after Collect, Results replays the cached outcomes in
// tuple order.
func (r *Result) Results() iter.Seq2[TupleOutcome, error] {
	return func(yield func(TupleOutcome, error) bool) {
		if r.collected {
			for _, o := range r.outcomes {
				if !yield(o, nil) {
					return
				}
			}
			if r.err != nil {
				yield(TupleOutcome{}, r.err)
			}
			return
		}
		if r.streamed {
			yield(TupleOutcome{}, ErrConsumed)
			return
		}
		r.streamed = true
		r.probSpan = r.execSpan.StartSpan("probability")
		t0 := time.Now()
		for o, err := range engine.Stream(r.ctx, r.db, r.Rel, r.cfg) {
			if err == nil {
				r.noteOutcome(o)
			}
			if !yield(o, err) {
				break
			}
		}
		r.Timing.Probability = time.Since(t0)
		r.finish()
	}
}

// Exec evaluates a plan on a database and computes the probabilistic
// interpretation of every result tuple under the configured strategy —
// the one entrypoint subsuming Run, RunWithOptions, RunParallel,
// RunParallelWithOptions and RunApprox. Plan evaluation (step I) happens
// before Exec returns; probability computation (step II) runs when the
// Result is consumed via Collect or Results. The context cancels both
// steps: every compilation polls ctx at expansion steps, so even a
// runaway Shannon expansion aborts promptly with ctx.Err().
func Exec(ctx context.Context, db *Database, plan Plan, opts ...Option) (*Result, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if db, err = cfg.resolveDB(db); err != nil {
		return nil, err
	}
	// Nil-safe span plumbing: without WithTrace every span is nil and
	// every span call below is a no-op — zero cost on the hot path.
	execSpan := cfg.trace.StartSpan("exec")
	chosen := cfg.mode
	var verdict *Verdict
	if cfg.mode == Auto {
		v := tractable.Classify(plan, db)
		verdict = &v
		if v.Class == Hard {
			chosen = Anytime
		} else {
			chosen = Exact
		}
	}
	strat, ecfg, cache := cfg.build(chosen, verdict)
	execSpan.SetAttr("parallelism", int64(ecfg.Parallelism))
	var cancel context.CancelFunc
	if cfg.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
	}
	var retry *store.RetryState
	if cfg.retrySet {
		retry = store.NewRetryState(cfg.retry)
		ctx = store.ContextWithRetry(ctx, retry)
	}
	evalSpan := execSpan.StartSpan("eval")
	evalCtx := ctx
	if evalSpan != nil {
		// Store scans attribute their block counters to the eval span.
		evalCtx = obs.ContextWithSpan(ctx, evalSpan)
	}
	var rel *Relation
	var construct time.Duration
	var explain *engine.ExplainNode
	if cfg.analyze {
		if cfg.evalPath == MaterializedEval {
			rel, construct, explain, err = engine.EvalPlanExplain(evalCtx, db, plan)
		} else {
			rel, construct, explain, err = engine.StreamEvalPlanExplain(evalCtx, db, plan)
		}
	} else if cfg.evalPath == MaterializedEval {
		rel, construct, err = engine.EvalPlan(evalCtx, db, plan)
	} else {
		rel, construct, err = engine.StreamEvalPlan(evalCtx, db, plan)
	}
	if err != nil {
		evalSpan.End()
		execSpan.End()
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	evalSpan.SetAttr("rows", int64(rel.Len()))
	evalSpan.End()
	res := &Result{
		Rel:      rel,
		Strategy: strat,
		Timing:   RunTiming{Construct: construct},
		db:       db,
		cfg:      ecfg,
		cache:    cache,
		retry:    retry,
		ctx:      ctx,
		cancel:   cancel,
		execSpan: execSpan,
	}
	res.Report.Trace = cfg.trace
	res.Report.Explain = explain
	if retry != nil {
		// Scans happen in step I, which is already done; surface the
		// retry counters even if the Result is never consumed.
		res.Report.Store = retry.Snapshot()
	}
	return res, nil
}

// ExecTable is Exec over an already-evaluated pvc-table: only step II
// runs. Auto mode selects the anytime engine (there is no plan to
// classify; its exact leaf closures resolve easy annotations to
// zero-width bounds anyway).
func ExecTable(ctx context.Context, db *Database, rel *Relation, opts ...Option) (*Result, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if db, err = cfg.resolveDB(db); err != nil {
		return nil, err
	}
	chosen := cfg.mode
	if chosen == Auto {
		chosen = Anytime
	}
	strat, ecfg, cache := cfg.build(chosen, nil)
	var cancel context.CancelFunc
	if cfg.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
	}
	res := &Result{
		Rel:      rel,
		Strategy: strat,
		db:       db,
		cfg:      ecfg,
		cache:    cache,
		ctx:      ctx,
		cancel:   cancel,
		execSpan: cfg.trace.StartSpan("exec"),
	}
	res.Report.Trace = cfg.trace
	return res, nil
}

// ExprResult is the probabilistic interpretation of one bare expression.
type ExprResult struct {
	// Confidence brackets the probability that the (semiring) expression
	// is non-zero; zero-width under exact strategies, guaranteed bounds
	// under Anytime, a 95% interval under Sample. Meaningless for
	// semimodule expressions (which have no truth value).
	Confidence Bounds
	// Dist is the full distribution of the expression — exact under
	// Exact/Auto-exact, a Monte Carlo estimate under Sample, empty under
	// Anytime (which brackets the confidence only).
	Dist Dist
	// Strategy records the chosen strategy; under Auto, Chosen reports
	// whether the exact probe succeeded or the anytime engine took over.
	Strategy Strategy
	// Report describes the exact computation (exact strategies).
	Report Report
	// Approx describes the anytime computation (anytime strategy).
	Approx *ApproxReport
	// SharedCache reports the WithSharedCache compilation cache of this
	// execution (all zeros when disabled). Under Auto, the counters are
	// those of the attempt that produced the result.
	SharedCache CacheStats
}

// ExecExpr computes the probabilistic interpretation of a bare semiring
// or semimodule expression over a registry — the expression-level
// counterpart of Exec, subsuming Pipeline.Distribution and Approximate.
// Auto mode probes exact compilation under a node budget
// (WithCompileBudget, default 2¹⁸ nodes) and falls back to the anytime
// engine at the configured ε when the budget is exceeded.
func ExecExpr(ctx context.Context, e Expr, reg *Registry, kind SemiringKind, opts ...Option) (*ExprResult, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.store != nil {
		return nil, errors.New("pvcagg: WithStore does not apply to ExecExpr: a bare expression carries its own registry and scans no tables")
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	semiring := e.Kind() == KindSemiring
	switch cfg.mode {
	case Exact:
		strat, ecfg, _ := cfg.build(Exact, nil)
		return execExprExact(ctx, e, reg, kind, ecfg, strat)
	case Anytime:
		if !semiring {
			return nil, fmt.Errorf("pvcagg: the anytime engine brackets truth probabilities and %s is a semimodule expression; use Exact", ExprString(e))
		}
		strat, ecfg, _ := cfg.build(Anytime, nil)
		return execExprAnytime(ctx, e, reg, kind, ecfg, strat)
	case Sample:
		strat, ecfg, _ := cfg.build(Sample, nil)
		return execExprSample(ctx, e, reg, kind, ecfg, strat)
	default: // Auto
		strat, ecfg, _ := cfg.build(Exact, nil)
		if ecfg.Compile.MaxNodes == 0 {
			ecfg.Compile.MaxNodes = autoExprBudget
		}
		res, err := execExprExact(ctx, e, reg, kind, ecfg, strat)
		if err == nil || !semiring || !errors.Is(err, compile.ErrNodeBudget) {
			return res, err
		}
		strat, ecfg, _ = cfg.build(Anytime, nil)
		return execExprAnytime(ctx, e, reg, kind, ecfg, strat)
	}
}

func execExprExact(ctx context.Context, e Expr, reg *Registry, kind SemiringKind, ecfg engine.ExecConfig, strat Strategy) (*ExprResult, error) {
	pl := &core.Pipeline{Semiring: algebra.SemiringFor(kind), Registry: reg, Options: ecfg.Compile}
	var (
		d   Dist
		rep Report
		err error
	)
	// Parallelism follows WithParallelism's convention: 1 is sequential,
	// <= 0 is GOMAXPROCS; a single expression parallelises by fanning its
	// Shannon branches out (bit-for-bit identical results on every path).
	if ecfg.Parallelism == 1 {
		d, rep, err = pl.DistributionCtx(ctx, e)
	} else {
		d, rep, err = pl.DistributionParallelCtx(ctx, e, ecfg.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	res := &ExprResult{Dist: d, Strategy: strat, Report: rep, SharedCache: ecfg.Compile.Shared.Stats()}
	if e.Kind() == KindSemiring {
		res.Confidence = compile.Point(d.TruthProbability())
	}
	if ecfg.OnBounds != nil {
		ecfg.OnBounds(res.Confidence)
	}
	return res, nil
}

func execExprAnytime(ctx context.Context, e Expr, reg *Registry, kind SemiringKind, ecfg engine.ExecConfig, strat Strategy) (*ExprResult, error) {
	b, rep, err := compile.ApproximateCtx(ctx, algebra.SemiringFor(kind), reg, e, *ecfg.Approx)
	if err != nil {
		return nil, err
	}
	return &ExprResult{Confidence: b, Strategy: strat, Approx: &rep, SharedCache: ecfg.Approx.Compile.Shared.Stats()}, nil
}

func execExprSample(ctx context.Context, e Expr, reg *Registry, kind SemiringKind, ecfg engine.ExecConfig, strat Strategy) (*ExprResult, error) {
	rng := rand.New(rand.NewSource(ecfg.Seed))
	d, err := worlds.MonteCarloCtx(ctx, e, reg, algebra.SemiringFor(kind), ecfg.Samples, rng)
	if err != nil {
		return nil, err
	}
	res := &ExprResult{Dist: d, Strategy: strat}
	if e.Kind() == KindSemiring {
		lo, hi := worlds.Hoeffding95(d.TruthProbability(), ecfg.Samples)
		res.Confidence = Bounds{Lo: lo, Hi: hi}
	}
	if ecfg.OnBounds != nil {
		ecfg.OnBounds(res.Confidence)
	}
	return res, nil
}

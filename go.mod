module pvcagg

go 1.24

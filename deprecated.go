package pvcagg

import (
	"context"

	"pvcagg/internal/engine"
)

// This file keeps the pre-Exec entry points alive as thin wrappers: every
// legacy function delegates to Exec/ExecTable/ExecExpr with the
// equivalent options and converts the unified TupleOutcomes back to its
// legacy result type, so legacy callers observe bit-for-bit identical
// tuples, probabilities and reports (asserted by deprecated_test.go).
// New code should call Exec directly; see the README migration table.

// legacyExact routes the four exact legacy run functions through Exec.
// The extra options carry the per-wrapper error contract: the sequential
// wrappers keep their historical stop-at-first-failure semantics via the
// unexported fail-fast option, the parallel ones their joined
// every-failure-reported errors.
func legacyExact(db *Database, plan Plan, opts CompileOptions, parallelism int, extra ...Option) (*Relation, []TupleResult, RunTiming, error) {
	res, err := Exec(context.Background(), db, plan,
		append([]Option{WithMode(Exact), WithCompileOptions(opts), WithParallelism(parallelism)}, extra...)...)
	if err != nil {
		return nil, nil, RunTiming{}, err
	}
	outs, err := res.Collect()
	if err != nil {
		return nil, nil, res.Timing, err
	}
	trs := make([]TupleResult, len(outs))
	for i, o := range outs {
		trs[i] = o.AsTupleResult()
	}
	return res.Rel, trs, res.Timing, nil
}

// Run evaluates a plan on a database and computes the probability of every
// result tuple.
//
// Deprecated: use Exec with WithMode(Exact) (or Auto) and Collect.
func Run(db *Database, plan Plan) (*Relation, []TupleResult, RunTiming, error) {
	return legacyExact(db, plan, CompileOptions{}, 1, failFastOpt())
}

// RunWithOptions is Run with explicit compilation options.
//
// Deprecated: use Exec with WithCompileOptions.
func RunWithOptions(db *Database, plan Plan, opts CompileOptions) (*Relation, []TupleResult, RunTiming, error) {
	return legacyExact(db, plan, opts, 1, failFastOpt())
}

// ParallelOptions configure batched parallel probability computation.
//
// Deprecated: use WithParallelism.
type ParallelOptions = engine.ParallelOptions

// RunParallel is Run with the probability step distributed over a
// bounded worker pool. Results are identical to Run's; failing tuples
// are all reported, joined into one error.
//
// Deprecated: use Exec with WithParallelism.
func RunParallel(db *Database, plan Plan, par ParallelOptions) (*Relation, []TupleResult, RunTiming, error) {
	return legacyExact(db, plan, CompileOptions{}, par.Parallelism)
}

// RunParallelWithOptions is RunParallel with explicit compilation
// options.
//
// Deprecated: use Exec with WithCompileOptions and WithParallelism.
func RunParallelWithOptions(db *Database, plan Plan, opts CompileOptions, par ParallelOptions) (*Relation, []TupleResult, RunTiming, error) {
	return legacyExact(db, plan, opts, par.Parallelism)
}

// ProbabilitiesParallel computes the probability of every tuple of an
// already-evaluated pvc-table with the given parallelism.
//
// Deprecated: use ExecTable with WithMode(Exact) and Collect.
func ProbabilitiesParallel(db *Database, rel *Relation, opts CompileOptions, par ParallelOptions) ([]TupleResult, error) {
	res, err := ExecTable(context.Background(), db, rel,
		WithMode(Exact), WithCompileOptions(opts), WithParallelism(par.Parallelism))
	if err != nil {
		return nil, err
	}
	outs, err := res.Collect()
	if err != nil {
		return nil, err
	}
	trs := make([]TupleResult, len(outs))
	for i, o := range outs {
		trs[i] = o.AsTupleResult()
	}
	return trs, nil
}

// RunApprox evaluates a plan and brackets every result tuple's confidence
// within opts.Eps (budgets permitting), distributing tuples over a bounded
// worker pool. Aggregation-column distributions are computed exactly.
//
// Deprecated: use Exec with WithMode(Anytime) and WithEps (or Auto, which
// selects the anytime engine exactly when the plan is hard).
func RunApprox(db *Database, plan Plan, opts ApproxOptions, par ParallelOptions) (*Relation, []ApproxTupleResult, RunTiming, error) {
	res, err := Exec(context.Background(), db, plan,
		WithMode(Anytime), WithApprox(opts), WithParallelism(par.Parallelism))
	if err != nil {
		return nil, nil, RunTiming{}, err
	}
	outs, err := res.Collect()
	if err != nil {
		return nil, nil, res.Timing, err
	}
	ars := make([]ApproxTupleResult, len(outs))
	for i, o := range outs {
		ars[i] = o.AsApproxTupleResult()
	}
	return res.Rel, ars, res.Timing, nil
}

// ProbabilitiesApprox brackets the confidence of every tuple of an
// already-evaluated pvc-table within opts.Eps.
//
// Deprecated: use ExecTable with WithMode(Anytime) and Collect.
func ProbabilitiesApprox(db *Database, rel *Relation, opts ApproxOptions, par ParallelOptions) ([]ApproxTupleResult, error) {
	res, err := ExecTable(context.Background(), db, rel,
		WithMode(Anytime), WithApprox(opts), WithParallelism(par.Parallelism))
	if err != nil {
		return nil, err
	}
	outs, err := res.Collect()
	if err != nil {
		return nil, err
	}
	ars := make([]ApproxTupleResult, len(outs))
	for i, o := range outs {
		ars[i] = o.AsApproxTupleResult()
	}
	return ars, nil
}

// Approximate computes guaranteed bounds on the probability that the
// semiring expression e is non-zero, by anytime partial d-tree expansion.
// The returned interval always contains the exact probability; its width
// is at most opts.Eps when the report's Converged flag is set.
//
// Deprecated: use ExecExpr with WithMode(Anytime).
func Approximate(e Expr, reg *Registry, kind SemiringKind, opts ApproxOptions) (Bounds, ApproxReport, error) {
	res, err := ExecExpr(context.Background(), e, reg, kind, WithMode(Anytime), WithApprox(opts))
	if err != nil {
		return Bounds{}, ApproxReport{}, err
	}
	return res.Confidence, *res.Approx, nil
}

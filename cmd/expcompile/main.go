// Command expcompile parses a semiring/semimodule/conditional expression,
// compiles it into a decomposition tree (Algorithm 1 of the paper) and
// prints the tree, its statistics and its exact probability distribution.
//
// Usage:
//
//	expcompile -expr '[min(x*y @min 5, (x+z) @min 10) <= 7]' \
//	           -var x=0.5 -var y=0.3 -var z=0.9 [-dot] [-no-pruning]
//
// Variables not declared with -var default to Boolean with probability p
// given by -p (default 0.5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pvcagg/internal/algebra"
	"pvcagg/internal/compile"
	"pvcagg/internal/dtree"
	"pvcagg/internal/expr"
	"pvcagg/internal/vars"
)

type varFlags []string

func (v *varFlags) String() string     { return strings.Join(*v, ",") }
func (v *varFlags) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	var (
		exprText  = flag.String("expr", "", "expression to compile (required)")
		defaultP  = flag.Float64("p", 0.5, "default marginal probability of undeclared Boolean variables")
		semiring  = flag.String("semiring", "B", "valuation semiring: B (Boolean) or N (naturals)")
		dot       = flag.Bool("dot", false, "print the d-tree in Graphviz DOT syntax")
		noPrune   = flag.Bool("no-pruning", false, "disable pruning rules and capping")
		noMemo    = flag.Bool("no-memo", false, "disable sub-expression memoisation")
		maxNodes  = flag.Int("max-nodes", 10_000_000, "abort compilation beyond this many d-tree nodes")
		varsGiven varFlags
	)
	flag.Var(&varsGiven, "var", "variable declaration name=prob (repeatable)")
	flag.Parse()
	if *exprText == "" {
		fmt.Fprintln(os.Stderr, "expcompile: -expr is required")
		flag.Usage()
		os.Exit(2)
	}

	e, err := expr.Parse(*exprText)
	if err != nil {
		fatal(err)
	}
	reg := vars.NewRegistry()
	for _, decl := range varsGiven {
		name, probText, ok := strings.Cut(decl, "=")
		if !ok {
			fatal(fmt.Errorf("bad -var %q, want name=prob", decl))
		}
		p, err := strconv.ParseFloat(probText, 64)
		if err != nil {
			fatal(fmt.Errorf("bad probability in -var %q: %v", decl, err))
		}
		reg.DeclareBool(name, p)
	}
	for _, x := range expr.Vars(e) {
		if !reg.Has(x) {
			reg.DeclareBool(x, *defaultP)
		}
	}
	var kind algebra.SemiringKind
	switch *semiring {
	case "B":
		kind = algebra.Boolean
	case "N":
		kind = algebra.Natural
	default:
		fatal(fmt.Errorf("unknown semiring %q (want B or N)", *semiring))
	}
	s := algebra.SemiringFor(kind)

	c := compile.New(s, reg, compile.Options{
		DisablePruning: *noPrune,
		DisableMemo:    *noMemo,
		MaxNodes:       *maxNodes,
	})
	res, err := c.Compile(e)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("expression: %s\n", expr.String(e))
	fmt.Printf("compile stats: %+v\n", res.Stats)
	st := dtree.Measure(res.Root)
	fmt.Printf("d-tree: %d nodes, %d leaves, depth %d, %d ⊔-nodes\n\n", st.Nodes, st.Leaves, st.Depth, st.Exclusive)
	if *dot {
		fmt.Println(dtree.DOT(res.Root))
	} else {
		fmt.Println(dtree.String(res.Root))
	}
	d, evalStats, err := dtree.Evaluate(res.Root, dtree.Env{Semiring: s, Registry: reg})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("distribution: %s\n", d)
	fmt.Printf("evaluation: %d node evaluations, max distribution size %d\n", evalStats.NodeEvals, evalStats.MaxDistSize)
	if e.Kind() == expr.KindSemiring {
		fmt.Printf("P[non-zero] = %.6g\n", d.TruthProbability())
	} else {
		fmt.Printf("E[value]    = %.6g\n", d.Expectation())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expcompile:", err)
	os.Exit(1)
}

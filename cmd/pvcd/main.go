// Command pvcd is the long-running PVQL query service: it loads a demo
// database (the Figure 1 shop database or generated probabilistic
// TPC-H) and serves queries over HTTP with admission control, a
// prepared-statement plan cache and a cross-query compilation cache.
//
// Usage:
//
//	pvcd -demo shop -p 0.5                  # Figure 1 database on :8080
//	pvcd -demo tpch -sf 0.001 -addr :9090   # probabilistic TPC-H
//	pvcd -store /data/tpch01                # disk-backed database (pvcimport)
//	pvcd -workers 4 -queue 8                # tighter admission budget
//	pvcd -shared-cache-entries -1           # disable the cross-query cache
//
// Query it with any HTTP client:
//
//	curl -s localhost:8080/query -d '{"query":"SELECT shop, COUNT(*) AS n FROM S GROUP BY shop"}'
//	curl -s localhost:8080/query -d '{"query":"...","mode":"anytime","eps":0.05,"timeout_ms":500}'
//	curl -s localhost:8080/query -d '{"query":"EXPLAIN ANALYZE SELECT ...","trace":true}'
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//
// With -pprof-addr, the Go runtime profiles are served on a separate
// listener (keep it off the public interface):
//
//	pvcd -pprof-addr localhost:6060 &
//	go tool pprof localhost:6060/debug/pprof/profile?seconds=10
//
// The first SIGINT drains in-flight queries and exits; a second forces
// exit immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pvcagg"
	"pvcagg/internal/server"
	"pvcagg/internal/tpch"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		demo         = flag.String("demo", "shop", "demo database: shop or tpch")
		p            = flag.Float64("p", 0.5, "tuple marginal probability (shop demo)")
		sf           = flag.Float64("sf", 0.001, "TPC-H scale factor (tpch demo)")
		workers      = flag.Int("workers", 0, "concurrent query budget (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4×workers)")
		maxQueueWait = flag.Duration("max-queue-wait", time.Second, "longest a request queues before 429")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request execution deadline cap")
		degradeAfter = flag.Duration("degrade-after", 0, "queue wait beyond which non-exact requests degrade to anytime bounds (0 = max-queue-wait/4)")
		degradeEps   = flag.Float64("degrade-eps", 0.05, "anytime bound width for degraded requests")
		planCache    = flag.Int("plan-cache", 128, "prepared-statement plan cache entries")
		cacheEntries = flag.Int("shared-cache-entries", 0, "cross-query compilation cache bound (0 = default, negative disables)")
		parallel     = flag.Int("parallel", 1, "per-query engine parallelism (0 = GOMAXPROCS)")
		storeDir     = flag.String("store", "", "serve a disk-backed database written by pvcimport instead of a -demo database")
		drainTimeout = flag.Duration("drain-timeout", 20*time.Second, "SIGTERM drain deadline for in-flight queries")
		retryBudget  = flag.Int("retry-budget", 256, "per-query retry budget for transient store read errors (negative disables retries)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off by default; bind to localhost)")
	)
	flag.Parse()

	var db *pvcagg.Database
	var health func() error
	var storeMetrics func() pvcagg.StoreMetrics
	served := *demo + " demo"
	if *storeDir != "" {
		st, err := pvcagg.OpenStore(*storeDir)
		if err != nil {
			log.Fatalf("pvcd: %v", err)
		}
		db = st.DB()
		health = st.Healthy
		storeMetrics = st.Metrics
		served = fmt.Sprintf("store %s (epoch %d)", *storeDir, st.Epoch())
	} else {
		var err error
		if db, err = buildDB(*demo, *p, *sf); err != nil {
			log.Fatalf("pvcd: %v", err)
		}
	}
	cfg := server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		MaxQueueWait:       *maxQueueWait,
		MaxTimeout:         *timeout,
		DegradeAfter:       *degradeAfter,
		DegradeEps:         *degradeEps,
		PlanCacheSize:      *planCache,
		SharedCacheEntries: *cacheEntries,
		Parallelism:        *parallel,
		Health:             health,
		StoreMetrics:       storeMetrics,
	}
	if *retryBudget >= 0 {
		// Bounded skips are on for the service: a block that is unreadable
		// after retries but provably contributes nothing degrades the
		// answer (degraded:true) instead of failing it.
		cfg.Retry = &pvcagg.RetryPolicy{Budget: *retryBudget, AllowBoundedSkip: true}
	}
	srv := server.New(db, cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		// Profiling lives on its own listener so the query port can be
		// exposed without also exposing heap dumps and CPU profiles. The
		// handlers are registered explicitly — the service mux never
		// inherits them via the DefaultServeMux side effect.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pvcd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("pvcd: pprof: %v", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		// Readiness flips first so load balancers stop routing here, then
		// Shutdown stops accepting and waits for in-flight queries under
		// the drain deadline.
		srv.BeginDrain()
		log.Println("pvcd: draining in-flight queries (interrupt again to force exit)")
		go func() {
			<-sigs
			log.Println("pvcd: forced exit")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("pvcd: shutdown: %v", err)
		}
	}()

	log.Printf("pvcd: serving %s on %s", served, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pvcd: %v", err)
	}
}

func buildDB(demo string, p, sf float64) (*pvcagg.Database, error) {
	switch demo {
	case "shop":
		return shopDB(p), nil
	case "tpch":
		return tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
	default:
		return nil, fmt.Errorf("unknown demo %q (want shop or tpch)", demo)
	}
}

// shopDB is the paper's Figure 1 running-example database with
// independent Boolean annotations at marginal p.
func shopDB(p float64) *pvcagg.Database {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	s := pvcagg.NewRelation("S", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "shop", Type: pvcagg.TString},
	})
	shops := []string{"M&S", "M&S", "M&S", "Gap", "Gap"}
	for i, shop := range shops {
		db.Registry.DeclareBool(fmt.Sprintf("x%d", i+1), p)
		s.MustInsert(pvcagg.MustParseExpr(fmt.Sprintf("x%d", i+1)),
			pvcagg.IntCell(int64(i+1)), pvcagg.StringCell(shop))
	}
	db.Add(s)
	ps := pvcagg.NewRelation("PS", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "price", Type: pvcagg.TValue},
	})
	for _, row := range [][3]int64{
		{1, 1, 10}, {1, 2, 50}, {2, 1, 11}, {2, 2, 60}, {3, 3, 15},
		{3, 4, 40}, {4, 1, 15}, {4, 3, 60}, {5, 1, 10},
	} {
		v := fmt.Sprintf("y%d%d", row[0], row[1])
		db.Registry.DeclareBool(v, p)
		ps.MustInsert(pvcagg.MustParseExpr(v),
			pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]), pvcagg.IntCell(row[2]))
	}
	db.Add(ps)
	p1 := pvcagg.NewRelation("P1", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	for i, row := range [][2]int64{{1, 4}, {2, 8}, {3, 7}, {4, 6}} {
		v := fmt.Sprintf("z%d", i+1)
		db.Registry.DeclareBool(v, p)
		p1.MustInsert(pvcagg.MustParseExpr(v), pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]))
	}
	db.Add(p1)
	p2 := pvcagg.NewRelation("P2", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	db.Registry.DeclareBool("z5", p)
	p2.MustInsert(pvcagg.MustParseExpr("z5"), pvcagg.IntCell(1), pvcagg.IntCell(5))
	db.Add(p2)
	return db
}

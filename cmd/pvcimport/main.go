// Command pvcimport builds a disk-backed pvc-database: it streams rows —
// from the TPC-H-shaped generator or from a CSV file — into the columnar
// block store that pvcrun/pvcd open with -store. Ingest is streaming end
// to end: no table is ever materialized in memory, so scale factors
// larger than RAM import in bounded space.
//
// Usage:
//
//	# generate TPC-H-shaped tables at scale factor 0.1:
//	pvcimport -out /data/tpch01 -gen tpch -sf 0.1 -seed 1
//
//	# the same with tuple-independent probabilistic fact tables:
//	pvcimport -out /data/tpch01p -gen tpch -sf 0.1 -seed 1 -prob -p 0.9
//
//	# import one CSV table (no header row) with an explicit schema:
//	pvcimport -out /data/db -csv items.csv -table items -schema "id:value,name:string,qty:value"
//
// The output directory must not already hold a committed store. The
// manifest is written last, atomically: a crash mid-import leaves a
// directory that OpenStore refuses, never a torn database.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pvcagg/internal/algebra"
	"pvcagg/internal/expr"
	"pvcagg/internal/pvc"
	"pvcagg/internal/store"
	"pvcagg/internal/tpch"
	"pvcagg/internal/value"
	"pvcagg/internal/vars"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory for the store (required)")
		gen      = flag.String("gen", "", "generate a dataset: tpch")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor (-gen tpch)")
		seed     = flag.Int64("seed", 1, "generator seed (-gen tpch)")
		prob     = flag.Bool("prob", false, "annotate fact tables with fresh Boolean variables (-gen tpch)")
		p        = flag.Float64("p", 0.9, "tuple marginal probability (-prob)")
		csvPath  = flag.String("csv", "", "import one CSV file (no header row)")
		table    = flag.String("table", "", "table name for -csv")
		schema   = flag.String("schema", "", `schema for -csv: "col:value,col:string,..."`)
		semiring = flag.String("semiring", "boolean", "store semiring: boolean or natural")
		block    = flag.Int("block", store.DefaultBlockCapacity, "rows per block")
	)
	flag.Parse()
	if err := run(*out, *gen, *sf, *seed, *prob, *p, *csvPath, *table, *schema, *semiring, *block); err != nil {
		fmt.Fprintln(os.Stderr, "pvcimport:", err)
		os.Exit(1)
	}
}

func run(out, gen string, sf float64, seed int64, prob bool, p float64, csvPath, table, schemaSpec, semiring string, block int) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	if (gen == "") == (csvPath == "") {
		return fmt.Errorf("exactly one of -gen or -csv must be given")
	}
	var kind algebra.SemiringKind
	switch semiring {
	case "boolean":
		kind = algebra.Boolean
	case "natural":
		kind = algebra.Natural
	default:
		return fmt.Errorf("unknown semiring %q (boolean or natural)", semiring)
	}

	reg := vars.NewRegistry()
	w, err := store.Create(out, kind, reg, store.Options{BlockCapacity: block})
	if err != nil {
		return err
	}

	switch {
	case gen == "tpch":
		cfg := tpch.Config{SF: sf, Seed: seed, Probabilistic: prob, TupleProb: p}
		if err := tpch.Stream(cfg, reg, &writerSink{w: w}); err != nil {
			return err
		}
	case gen != "":
		return fmt.Errorf("unknown generator %q (tpch)", gen)
	default:
		if err := importCSV(w, csvPath, table, schemaSpec); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	st, err := store.Open(out)
	if err != nil {
		return fmt.Errorf("post-import check: %w", err)
	}
	for _, name := range st.Names() {
		t, _ := st.Table(name)
		fmt.Printf("%-12s %10d rows  %6d blocks\n", name, t.Rows(), t.Blocks())
	}
	return nil
}

// writerSink streams generator output into the store writer.
type writerSink struct {
	w  *store.Writer
	tw *store.TableWriter
}

func (s *writerSink) Table(name string, schema pvc.Schema) error {
	tw, err := s.w.CreateTable(name, schema)
	if err != nil {
		return err
	}
	s.tw = tw
	return nil
}

func (s *writerSink) Row(ann expr.Expr, cells ...pvc.Cell) error {
	return s.tw.Append(ann, cells...)
}

// importCSV streams one headerless CSV file into a table, row by row.
func importCSV(w *store.Writer, path, table, schemaSpec string) error {
	if table == "" {
		return fmt.Errorf("-csv requires -table")
	}
	schema, err := parseSchema(schemaSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := w.CreateTable(table, schema)
	if err != nil {
		return err
	}
	r := csv.NewReader(f)
	r.FieldsPerRecord = len(schema)
	for line := 1; ; line++ {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		cells := make([]pvc.Cell, len(schema))
		for i, field := range rec {
			if schema[i].Type == pvc.TString {
				cells[i] = pvc.StringCell(field)
				continue
			}
			v, err := value.Parse(strings.TrimSpace(field))
			if err != nil {
				return fmt.Errorf("%s line %d column %s: %w", path, line, schema[i].Name, err)
			}
			cells[i] = pvc.ValueCell(v)
		}
		if err := tw.Append(nil, cells...); err != nil {
			return err
		}
	}
}

// parseSchema parses "a:value,b:string" into a pvc.Schema.
func parseSchema(spec string) (pvc.Schema, error) {
	if spec == "" {
		return nil, fmt.Errorf("-csv requires -schema (e.g. \"id:value,name:string\")")
	}
	var out pvc.Schema
	for _, part := range strings.Split(spec, ",") {
		name, ty, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema entry %q is not name:type", part)
		}
		switch ty {
		case "value":
			out = append(out, pvc.Col{Name: name, Type: pvc.TValue})
		case "string":
			out = append(out, pvc.Col{Name: name, Type: pvc.TString})
		default:
			return nil, fmt.Errorf("schema entry %q: type must be value or string", part)
		}
	}
	return out, nil
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pvcagg/internal/store"
)

// The import error-path suite: every way an ingest can die — unwritable
// destination, disk faults mid-stream, malformed input — must leave no
// committed store behind (the manifest-last contract) and report a
// useful error.

func writeCSV(t *testing.T, rows int, corruptLine int) string {
	t.Helper()
	var b strings.Builder
	for i := 1; i <= rows; i++ {
		if i == corruptLine {
			fmt.Fprintf(&b, "not-a-number,bad%d\n", i)
			continue
		}
		fmt.Fprintf(&b, "%d,n%03d\n", i, i)
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertNoStore asserts the directory holds no committed store: Open
// refuses and no manifest file exists.
func assertNoStore(t *testing.T, out string) {
	t.Helper()
	if _, err := store.Open(out); err == nil {
		t.Error("failed import left a store that opens")
	}
	if _, err := os.Stat(filepath.Join(out, "manifest.json")); err == nil {
		t.Error("failed import left a manifest behind")
	}
}

func TestImportCSVRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "db")
	csvPath := writeCSV(t, 50, 0)
	if err := run(out, "", 0, 0, false, 0, csvPath, "items", "id:value,name:string", "boolean", 8); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := st.Table("items")
	if !ok || tab.Rows() != 50 {
		t.Fatalf("imported table missing or short: %v", ok)
	}
}

func TestImportUnwritableDir(t *testing.T) {
	// The -out path is an existing regular file, so the store's MkdirAll
	// fails (works even when the test runs as root, unlike chmod 0).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := writeCSV(t, 10, 0)
	err := run(blocker, "", 0, 0, false, 0, csvPath, "items", "id:value,name:string", "boolean", 8)
	if err == nil {
		t.Fatal("import into a file-as-directory succeeded")
	}
	if _, serr := store.Open(blocker); serr == nil {
		t.Error("unwritable destination still opened as a store")
	}
}

// TestImportDiskFull: the hidden PVC_FAULTFS knob makes the second data
// write fail (disk full mid-stream); the ingest must report the error
// and commit nothing.
func TestImportDiskFull(t *testing.T) {
	t.Setenv("PVC_FAULTFS", "write:nth=2")
	out := filepath.Join(t.TempDir(), "db")
	csvPath := writeCSV(t, 50, 0)
	err := run(out, "", 0, 0, false, 0, csvPath, "items", "id:value,name:string", "boolean", 8)
	if err == nil {
		t.Fatal("import with injected write failure succeeded")
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Errorf("error %v does not surface the write fault", err)
	}
	assertNoStore(t, out)
}

// TestImportMalformedCSV: a bad record mid-stream aborts the ingest with
// a located error and no partial store.
func TestImportMalformedCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "db")
	csvPath := writeCSV(t, 50, 30)
	err := run(out, "", 0, 0, false, 0, csvPath, "items", "id:value,name:string", "boolean", 8)
	if err == nil {
		t.Fatal("import of malformed CSV succeeded")
	}
	if !strings.Contains(err.Error(), "line 30") {
		t.Errorf("error %v does not locate the bad record", err)
	}
	assertNoStore(t, out)
}

func TestImportFlagValidation(t *testing.T) {
	csvPath := writeCSV(t, 1, 0)
	cases := []struct {
		name string
		err  string
		run  func() error
	}{
		{"no out", "-out is required", func() error {
			return run("", "", 0, 0, false, 0, csvPath, "t", "id:value", "boolean", 8)
		}},
		{"gen and csv", "exactly one", func() error {
			return run(filepath.Join(t.TempDir(), "db"), "tpch", 0.01, 1, false, 0, csvPath, "t", "id:value", "boolean", 8)
		}},
		{"bad semiring", "unknown semiring", func() error {
			return run(filepath.Join(t.TempDir(), "db"), "", 0, 0, false, 0, csvPath, "t", "id:value", "viterbi", 8)
		}},
		{"csv without table", "-csv requires -table", func() error {
			return run(filepath.Join(t.TempDir(), "db"), "", 0, 0, false, 0, csvPath, "", "id:value", "boolean", 8)
		}},
		{"csv without schema", "-csv requires -schema", func() error {
			return run(filepath.Join(t.TempDir(), "db"), "", 0, 0, false, 0, csvPath, "t", "", "boolean", 8)
		}},
	}
	for _, c := range cases {
		if err := c.run(); err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.err)
		}
	}
}

// Command pvcrun evaluates the paper's running-example queries (Figure 1)
// or the TPC-H experiment queries on generated data, printing the result
// pvc-table with annotations, the tractability classification, the chosen
// execution strategy, and the probability of every answer tuple.
//
// Usage:
//
//	pvcrun -demo shop  -p 0.5               # Figure 1 database, queries Q1/Q2
//	pvcrun -demo tpch  -sf 0.001            # TPC-H Q1 and Q2
//	pvcrun -demo tpch  -sf 0.001 -parallel 0   # parallel probability step (GOMAXPROCS)
//	pvcrun -demo shop  -mode anytime -eps 0.01 # anytime bounds of width ≤ 0.01
//	pvcrun -demo shop  -mode auto              # Classify routes each query
//	pvcrun -demo tpch  -timeout 5s             # cancel runaway compilations
//
// Ctrl-C cancels the in-flight compilations cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"pvcagg"
	"pvcagg/internal/tpch"
)

func main() {
	var (
		demo     = flag.String("demo", "shop", "demo database: shop or tpch")
		p        = flag.Float64("p", 0.5, "tuple marginal probability (shop demo)")
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor (tpch demo)")
		parallel = flag.Int("parallel", 1, "probability-step parallelism (0 = GOMAXPROCS, 1 = sequential)")
		mode     = flag.String("mode", "auto", "execution strategy: auto, exact or anytime")
		eps      = flag.Float64("eps", 0, "anytime confidence-bound width (anytime/auto modes)")
		timeout  = flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts, err := execOptions(*mode, *eps, *parallel, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pvcrun:", err)
		os.Exit(2)
	}
	switch *demo {
	case "shop":
		runShop(ctx, *p, opts)
	case "tpch":
		runTPCH(ctx, *sf, opts)
	default:
		fmt.Fprintf(os.Stderr, "pvcrun: unknown demo %q\n", *demo)
		os.Exit(2)
	}
}

// execOptions translates the flags into Exec options.
func execOptions(mode string, eps float64, parallel int, timeout time.Duration) ([]pvcagg.Option, error) {
	opts := []pvcagg.Option{pvcagg.WithParallelism(parallel)}
	switch mode {
	case "auto":
		opts = append(opts, pvcagg.WithMode(pvcagg.Auto))
	case "exact":
		opts = append(opts, pvcagg.WithMode(pvcagg.Exact))
	case "anytime":
		opts = append(opts, pvcagg.WithMode(pvcagg.Anytime))
	default:
		return nil, fmt.Errorf("unknown mode %q (want auto, exact or anytime)", mode)
	}
	if eps > 0 {
		opts = append(opts, pvcagg.WithEps(eps))
	}
	if timeout > 0 {
		opts = append(opts, pvcagg.WithTimeout(timeout))
	}
	return opts, nil
}

// confString renders an exact confidence as a number and anytime bounds as
// an interval.
func confString(b pvcagg.Bounds) string {
	if b.Lo == b.Hi {
		return fmt.Sprintf("%.6g", b.Lo)
	}
	return b.String()
}

// printResult runs step II of an Exec result and prints every answer
// tuple with its confidence and, when present, the expectation of the
// first aggregation column.
func printResult(res *pvcagg.Result, verbose bool) error {
	outs, err := res.Collect()
	if err != nil {
		return err
	}
	for i, o := range outs {
		if !verbose && i >= 8 {
			fmt.Printf("   … %d more\n", len(outs)-i)
			break
		}
		fmt.Printf("   P[%v] = %s", cellsOf(o.Tuple), confString(o.Confidence))
		if len(o.AggDists) > 0 {
			fmt.Printf("  E[agg] = %.6g", o.AggDists[0].Expectation())
		}
		fmt.Println()
	}
	return nil
}

func runShop(ctx context.Context, p float64, opts []pvcagg.Option) {
	db := shopDB(p)
	q1 := &pvcagg.Project{
		Cols: []string{"shop", "price"},
		Input: &pvcagg.Join{
			L: &pvcagg.Join{L: &pvcagg.Scan{Table: "S"}, R: &pvcagg.Scan{Table: "PS"}},
			R: &pvcagg.Union{L: &pvcagg.Scan{Table: "P1"}, R: &pvcagg.Scan{Table: "P2"}},
		},
	}
	q2 := &pvcagg.Project{
		Cols: []string{"shop"},
		Input: &pvcagg.Select{
			Pred: pvcagg.Where(pvcagg.ColTheta("P", pvcagg.LE, pvcagg.IntCell(50))),
			Input: &pvcagg.GroupAgg{
				Input:   q1,
				GroupBy: []string{"shop"},
				Aggs:    []pvcagg.AggSpec{{Out: "P", Agg: pvcagg.MAX, Over: "price"}},
			},
		},
	}
	for _, q := range []struct {
		name string
		plan pvcagg.Plan
	}{{"Q1", q1}, {"Q2", q2}} {
		fmt.Printf("== %s = %s\n", q.name, q.plan)
		fmt.Printf("   class: %v\n", pvcagg.Classify(q.plan, db))
		res, err := pvcagg.Exec(ctx, db, q.plan, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("   strategy: %v\n", res.Strategy)
		fmt.Println(res.Rel)
		if err := printResult(res, true); err != nil {
			fatal(err)
		}
		fmt.Printf("   ⟦·⟧ %v, P(·) %v\n\n", res.Timing.Construct, res.Timing.Probability)
	}
}

func runTPCH(ctx context.Context, sf float64, opts []pvcagg.Option) {
	db, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
	if err != nil {
		fatal(err)
	}
	for _, q := range []struct {
		name string
		plan pvcagg.Plan
	}{
		{"TPC-H Q1", tpch.Q1(1200)},
		{"TPC-H Q2", tpch.Q2(1, "AFRICA")},
	} {
		fmt.Printf("== %s\n", q.name)
		res, err := pvcagg.Exec(ctx, db, q.plan, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("   strategy: %v\n", res.Strategy)
		if err := printResult(res, false); err != nil {
			fatal(err)
		}
		fmt.Printf("   %d answer tuples; ⟦·⟧ %v, P(·) %v\n\n",
			res.Len(), res.Timing.Construct, res.Timing.Probability)
	}
}

func shopDB(p float64) *pvcagg.Database {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	s := pvcagg.NewRelation("S", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "shop", Type: pvcagg.TString},
	})
	shops := []string{"M&S", "M&S", "M&S", "Gap", "Gap"}
	for i, shop := range shops {
		db.Registry.DeclareBool(fmt.Sprintf("x%d", i+1), p)
		s.MustInsert(pvcagg.MustParseExpr(fmt.Sprintf("x%d", i+1)),
			pvcagg.IntCell(int64(i+1)), pvcagg.StringCell(shop))
	}
	db.Add(s)
	ps := pvcagg.NewRelation("PS", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "price", Type: pvcagg.TValue},
	})
	for _, row := range [][3]int64{
		{1, 1, 10}, {1, 2, 50}, {2, 1, 11}, {2, 2, 60}, {3, 3, 15},
		{3, 4, 40}, {4, 1, 15}, {4, 3, 60}, {5, 1, 10},
	} {
		v := fmt.Sprintf("y%d%d", row[0], row[1])
		db.Registry.DeclareBool(v, p)
		ps.MustInsert(pvcagg.MustParseExpr(v),
			pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]), pvcagg.IntCell(row[2]))
	}
	db.Add(ps)
	p1 := pvcagg.NewRelation("P1", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	for i, row := range [][2]int64{{1, 4}, {2, 8}, {3, 7}, {4, 6}} {
		v := fmt.Sprintf("z%d", i+1)
		db.Registry.DeclareBool(v, p)
		p1.MustInsert(pvcagg.MustParseExpr(v), pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]))
	}
	db.Add(p1)
	p2 := pvcagg.NewRelation("P2", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	db.Registry.DeclareBool("z5", p)
	p2.MustInsert(pvcagg.MustParseExpr("z5"), pvcagg.IntCell(1), pvcagg.IntCell(5))
	db.Add(p2)
	return db
}

func cellsOf(t pvcagg.Tuple) string {
	out := "⟨"
	for i, c := range t.Cells {
		if i > 0 {
			out += ", "
		}
		out += c.String()
	}
	return out + "⟩"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvcrun:", err)
	os.Exit(1)
}

// Command pvcrun evaluates the paper's running-example queries (Figure 1)
// or the TPC-H experiment queries on generated data — or any PVQL query
// you type — printing the result pvc-table with annotations, the
// tractability classification, the chosen execution strategy, and the
// probability of every answer tuple.
//
// Usage:
//
//	pvcrun -demo shop  -p 0.5               # Figure 1 database, queries Q1/Q2
//	pvcrun -demo tpch  -sf 0.001            # TPC-H Q1 and Q2
//	pvcrun -demo tpch  -sf 0.001 -parallel 0   # parallel probability step (GOMAXPROCS)
//	pvcrun -demo shop  -mode anytime -eps 0.01 # anytime bounds of width ≤ 0.01
//	pvcrun -demo shop  -mode auto              # Classify routes each query
//	pvcrun -demo shop  -mode sample -seed 42   # seeded Monte Carlo estimation
//	pvcrun -demo tpch  -timeout 5s             # cancel runaway compilations
//
//	# one PVQL query against the demo database:
//	pvcrun -demo shop -query "SELECT shop, COUNT(*) AS n FROM S GROUP BY shop"
//
//	# interactive PVQL REPL over the demo database:
//	pvcrun -demo shop -repl
//
//	# query a disk-backed database written by pvcimport (block scans with
//	# zone-map skipping; datasets larger than RAM):
//	pvcrun -store /data/tpch01 -query "SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag"
//	pvcrun -store /data/tpch01 -repl
//
//	# observability: print the execution trace, or a per-operator
//	# EXPLAIN / EXPLAIN ANALYZE plan tree
//	pvcrun -demo shop -trace -query "SELECT shop, COUNT(*) AS n FROM S GROUP BY shop"
//	pvcrun -demo shop -query "EXPLAIN ANALYZE SELECT shop, COUNT(*) AS n FROM S GROUP BY shop"
//
// Disk-backed queries additionally print the scan's I/O summary (blocks
// read vs skipped) and, when retries engaged, the retry budget's work.
//
// The sample mode requires -seed: the engine has no ambient randomness,
// so every estimate is reproducible from the logged seed. Ctrl-C cancels
// the in-flight compilations cleanly. In the REPL, Ctrl-C is scoped to
// the running query: the first interrupt aborts it — printing the tuples
// already computed (for an anytime query, their sound bounds) — and
// returns to the prompt; a second interrupt while it winds down exits.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"pvcagg"
	"pvcagg/internal/tpch"
)

func main() {
	var (
		demo     = flag.String("demo", "shop", "demo database: shop or tpch")
		p        = flag.Float64("p", 0.5, "tuple marginal probability (shop demo)")
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor (tpch demo)")
		parallel = flag.Int("parallel", 1, "probability-step parallelism (0 = GOMAXPROCS, 1 = sequential)")
		mode     = flag.String("mode", "auto", "execution strategy: auto, exact, anytime or sample")
		eval     = flag.String("eval", "streaming", "step-I physical execution layer: streaming or materialized")
		eps      = flag.Float64("eps", 0, "anytime confidence-bound width (anytime/auto modes)")
		seed     = flag.Int64("seed", 0, "Monte Carlo seed (required by -mode sample; estimates are reproducible from it)")
		timeout  = flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
		query    = flag.String("query", "", "run one PVQL query against the demo database and exit")
		repl     = flag.Bool("repl", false, "interactive PVQL prompt over the demo database")
		storeDir = flag.String("store", "", "open a disk-backed database written by pvcimport instead of a -demo database")
		trace    = flag.Bool("trace", false, "record and print the execution trace (spans with wall time, allocations and stage counters)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	opts, err := execOptions(*mode, *eval, *eps, *parallel, *timeout, *seed, seedSet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pvcrun:", err)
		os.Exit(2)
	}
	var db *pvcagg.Database
	var st *pvcagg.Store
	if *storeDir != "" {
		st, err = pvcagg.OpenStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		db = st.DB()
		// Disk-backed runs get the default retry budget so transient read
		// blips heal silently and the per-query summary can report what
		// the retries actually did.
		opts = append(opts, pvcagg.WithRetry(pvcagg.RetryPolicy{}))
		if *query == "" && !*repl {
			// No query to run: describe the store and point at -query/-repl.
			fmt.Printf("store %s (epoch %d):\n", *storeDir, st.Epoch())
			listTables(db)
			fmt.Println("use -query or -repl to run PVQL against it")
			return
		}
	} else {
		switch *demo {
		case "shop":
			db = shopDB(*p)
		case "tpch":
			db, err = tpch.Generate(tpch.Config{SF: *sf, Seed: 1, Probabilistic: true})
			if err != nil {
				fatal(err)
			}
		default:
			fmt.Fprintf(os.Stderr, "pvcrun: unknown demo %q\n", *demo)
			os.Exit(2)
		}
	}
	switch {
	case *query != "":
		if err := runQuery(ctx, db, *query, opts, true, *trace, st); err != nil {
			fatal(err)
		}
	case *repl:
		// Release the process-wide handler: the REPL scopes SIGINT to the
		// query it is running, so Ctrl-C must not cancel a shared context.
		stop()
		runREPL(db, opts, *trace, st)
	case *demo == "shop":
		runShop(ctx, db, opts)
	default:
		runTPCH(ctx, db, opts)
	}
}

// execOptions translates the flags into Exec options.
func execOptions(mode, eval string, eps float64, parallel int, timeout time.Duration, seed int64, seedSet bool) ([]pvcagg.Option, error) {
	opts := []pvcagg.Option{pvcagg.WithParallelism(parallel)}
	switch eval {
	case "streaming":
		opts = append(opts, pvcagg.WithEvalPath(pvcagg.StreamingEval))
	case "materialized":
		opts = append(opts, pvcagg.WithEvalPath(pvcagg.MaterializedEval))
	default:
		return nil, fmt.Errorf("unknown eval path %q (want streaming or materialized)", eval)
	}
	switch mode {
	case "auto":
		opts = append(opts, pvcagg.WithMode(pvcagg.Auto))
	case "exact":
		opts = append(opts, pvcagg.WithMode(pvcagg.Exact))
	case "anytime":
		opts = append(opts, pvcagg.WithMode(pvcagg.Anytime))
	case "sample":
		if !seedSet {
			return nil, errors.New("-mode sample requires an explicit -seed (no ambient randomness; estimates must be reproducible)")
		}
		opts = append(opts, pvcagg.WithMode(pvcagg.Sample), pvcagg.WithSeed(seed))
	default:
		return nil, fmt.Errorf("unknown mode %q (want auto, exact, anytime or sample)", mode)
	}
	if seedSet && mode != "sample" {
		return nil, fmt.Errorf("-seed only applies to -mode sample (mode %q has no sampling step)", mode)
	}
	if eps > 0 {
		opts = append(opts, pvcagg.WithEps(eps))
	}
	if timeout > 0 {
		opts = append(opts, pvcagg.WithTimeout(timeout))
	}
	return opts, nil
}

// runQuery compiles and executes one PVQL query, printing the optimized
// plan, its classification, the strategy and every answer. An EXPLAIN
// prefix prints the estimated plan tree without executing; EXPLAIN
// ANALYZE executes and prints estimates next to per-operator actuals.
// With trace, the execution trace is printed after the summary; with a
// store, so are the scan's I/O and retry counters.
func runQuery(ctx context.Context, db *pvcagg.Database, src string, opts []pvcagg.Option, verbose, trace bool, st *pvcagg.Store) error {
	plan, explain, err := pvcagg.ParseQueryExplain(db, src)
	if err != nil {
		var qe *pvcagg.QueryError
		if errors.As(err, &qe) {
			return fmt.Errorf("%s", qe.Render(src))
		}
		return err
	}
	fmt.Printf("   plan: %s\n", plan)
	if explain == pvcagg.ExplainPlan {
		fmt.Print(indent(pvcagg.Explain(db, plan).Render()))
		return nil
	}
	fmt.Printf("   class: %v\n", pvcagg.Classify(plan, db))
	// The three-index append keeps per-query options (a fresh trace, the
	// analyze decorators) out of the caller's shared slice.
	opts = opts[:len(opts):len(opts)]
	if explain == pvcagg.ExplainAnalyze {
		opts = append(opts, pvcagg.WithExplainAnalyze())
	}
	var tr *pvcagg.Trace
	if trace {
		tr = pvcagg.NewTrace()
		opts = append(opts, pvcagg.WithTrace(tr))
	}
	var before pvcagg.StoreMetrics
	if st != nil {
		before = st.Metrics()
	}
	res, err := pvcagg.Exec(ctx, db, plan, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("   strategy: %v\n", res.Strategy)
	if err := printResult(res, verbose); err != nil {
		return err
	}
	fmt.Printf("   %d answer tuples; ⟦·⟧ %v, P(·) %v\n", res.Len(), res.Timing.Construct, res.Timing.Probability)
	if res.Report.Explain != nil {
		fmt.Print(indent(res.Report.Explain.Render()))
	}
	if st != nil {
		m, r := st.Metrics(), res.Report.Store
		fmt.Printf("   store: blocks read=%d skipped=%d, bytes read=%d skipped=%d, rows=%d\n",
			m.BlocksRead-before.BlocksRead, m.BlocksSkipped-before.BlocksSkipped,
			m.BytesRead-before.BytesRead, m.BytesSkipped-before.BytesSkipped,
			m.RowsRead-before.RowsRead)
		if r.Attempts > 0 || r.BoundedBlocks > 0 {
			fmt.Printf("   retries: reads retried=%d retries spent=%d exhausted=%d bounded skips=%d\n",
				r.Attempts, r.Retries, r.Exhausted, r.BoundedBlocks)
		}
	}
	if tr != nil {
		fmt.Print(indent(tr.Render()))
	}
	return nil
}

// indent shifts a multi-line rendering under the three-space summary
// margin.
func indent(s string) string {
	s = strings.TrimRight(s, "\n")
	return "   " + strings.ReplaceAll(s, "\n", "\n   ") + "\n"
}

// runREPL reads PVQL queries from stdin, one per line, until EOF or \q.
// SIGINT is scoped per query: the first Ctrl-C cancels the in-flight
// query (its partial results are printed) and the loop returns to the
// prompt; a second Ctrl-C before the query winds down exits the shell.
func runREPL(db *pvcagg.Database, opts []pvcagg.Option, trace bool, st *pvcagg.Store) {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt)
	defer signal.Stop(sigs)
	fmt.Println("PVQL interactive shell — one query per line.")
	fmt.Println(`  \t lists tables, \q quits, Ctrl-C cancels the running query. Example: SELECT * FROM ` + firstTable(db))
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("pvql> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\t`:
			listTables(db)
			continue
		}
		// Drop any interrupt delivered while idling at the prompt so it
		// cannot cancel the next query before it starts.
		select {
		case <-sigs:
		default:
		}
		qctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			select {
			case <-sigs:
				fmt.Fprintln(os.Stderr, "^C — cancelling query (Ctrl-C again to exit)")
				cancel()
				select {
				case <-sigs:
					os.Exit(130)
				case <-done:
				}
			case <-done:
			}
		}()
		err := runQuery(qctx, db, line, opts, true, trace, st)
		close(done)
		cancel()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "query cancelled")
			} else {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
}

// listTables prints every table with its schema — in-memory relations
// with their tuple counts, disk-backed provider tables without (counting
// would scan them).
func listTables(db *pvcagg.Database) {
	for _, name := range db.Names() {
		schema, err := db.Schema(name)
		if err != nil {
			continue
		}
		cols := make([]string, len(schema))
		for i, c := range schema {
			cols[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
		}
		if rel, err := db.Relation(name); err == nil {
			fmt.Printf("  %s(%s) — %d tuples\n", name, strings.Join(cols, ", "), rel.Len())
		} else {
			fmt.Printf("  %s(%s) — on disk\n", name, strings.Join(cols, ", "))
		}
	}
}

func firstTable(db *pvcagg.Database) string {
	if names := db.Names(); len(names) > 0 {
		return names[0]
	}
	return "R"
}

// confString renders an exact confidence as a number and anytime bounds as
// an interval.
func confString(b pvcagg.Bounds) string {
	if b.Lo == b.Hi {
		return fmt.Sprintf("%.6g", b.Lo)
	}
	return b.String()
}

// printResult runs step II of an Exec result and prints every answer
// tuple with its confidence and, when present, the expectation of the
// first aggregation column. It consumes the result as a stream, so a
// cancelled run (REPL Ctrl-C) still prints the tuples that finished —
// for an anytime query, their sound bounds — before reporting the
// cancellation.
func printResult(res *pvcagg.Result, verbose bool) error {
	var outs []pvcagg.TupleOutcome
	var firstErr error
	for o, err := range res.Results() {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		outs = append(outs, o)
	}
	// The stream yields in completion order; restore tuple order.
	sort.Slice(outs, func(i, j int) bool { return outs[i].Index < outs[j].Index })
	if firstErr != nil && len(outs) > 0 {
		fmt.Printf("   (partial: %d of %d tuples computed)\n", len(outs), res.Len())
	}
	for i, o := range outs {
		if !verbose && i >= 8 {
			fmt.Printf("   … %d more\n", len(outs)-i)
			break
		}
		fmt.Printf("   P[%v] = %s", cellsOf(o.Tuple), confString(o.Confidence))
		if len(o.AggDists) > 0 {
			fmt.Printf("  E[agg] = %.6g", o.AggDists[0].Expectation())
		}
		fmt.Println()
	}
	return firstErr
}

func runShop(ctx context.Context, db *pvcagg.Database, opts []pvcagg.Option) {
	q1 := &pvcagg.Project{
		Cols: []string{"shop", "price"},
		Input: &pvcagg.Join{
			L: &pvcagg.Join{L: &pvcagg.Scan{Table: "S"}, R: &pvcagg.Scan{Table: "PS"}},
			R: &pvcagg.Union{L: &pvcagg.Scan{Table: "P1"}, R: &pvcagg.Scan{Table: "P2"}},
		},
	}
	q2 := &pvcagg.Project{
		Cols: []string{"shop"},
		Input: &pvcagg.Select{
			Pred: pvcagg.Where(pvcagg.ColTheta("P", pvcagg.LE, pvcagg.IntCell(50))),
			Input: &pvcagg.GroupAgg{
				Input:   q1,
				GroupBy: []string{"shop"},
				Aggs:    []pvcagg.AggSpec{{Out: "P", Agg: pvcagg.MAX, Over: "price"}},
			},
		},
	}
	for _, q := range []struct {
		name string
		plan pvcagg.Plan
	}{{"Q1", q1}, {"Q2", q2}} {
		fmt.Printf("== %s = %s\n", q.name, q.plan)
		fmt.Printf("   class: %v\n", pvcagg.Classify(q.plan, db))
		res, err := pvcagg.Exec(ctx, db, q.plan, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("   strategy: %v\n", res.Strategy)
		fmt.Println(res.Rel)
		if err := printResult(res, true); err != nil {
			fatal(err)
		}
		fmt.Printf("   ⟦·⟧ %v, P(·) %v\n\n", res.Timing.Construct, res.Timing.Probability)
	}
}

func runTPCH(ctx context.Context, db *pvcagg.Database, opts []pvcagg.Option) {
	for _, q := range []struct {
		name string
		plan pvcagg.Plan
	}{
		{"TPC-H Q1", tpch.Q1(1200)},
		{"TPC-H Q2", tpch.Q2(1, "AFRICA")},
	} {
		fmt.Printf("== %s\n", q.name)
		res, err := pvcagg.Exec(ctx, db, q.plan, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("   strategy: %v\n", res.Strategy)
		if err := printResult(res, false); err != nil {
			fatal(err)
		}
		fmt.Printf("   %d answer tuples; ⟦·⟧ %v, P(·) %v\n\n",
			res.Len(), res.Timing.Construct, res.Timing.Probability)
	}
}

func shopDB(p float64) *pvcagg.Database {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	s := pvcagg.NewRelation("S", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "shop", Type: pvcagg.TString},
	})
	shops := []string{"M&S", "M&S", "M&S", "Gap", "Gap"}
	for i, shop := range shops {
		db.Registry.DeclareBool(fmt.Sprintf("x%d", i+1), p)
		s.MustInsert(pvcagg.MustParseExpr(fmt.Sprintf("x%d", i+1)),
			pvcagg.IntCell(int64(i+1)), pvcagg.StringCell(shop))
	}
	db.Add(s)
	ps := pvcagg.NewRelation("PS", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "price", Type: pvcagg.TValue},
	})
	for _, row := range [][3]int64{
		{1, 1, 10}, {1, 2, 50}, {2, 1, 11}, {2, 2, 60}, {3, 3, 15},
		{3, 4, 40}, {4, 1, 15}, {4, 3, 60}, {5, 1, 10},
	} {
		v := fmt.Sprintf("y%d%d", row[0], row[1])
		db.Registry.DeclareBool(v, p)
		ps.MustInsert(pvcagg.MustParseExpr(v),
			pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]), pvcagg.IntCell(row[2]))
	}
	db.Add(ps)
	p1 := pvcagg.NewRelation("P1", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	for i, row := range [][2]int64{{1, 4}, {2, 8}, {3, 7}, {4, 6}} {
		v := fmt.Sprintf("z%d", i+1)
		db.Registry.DeclareBool(v, p)
		p1.MustInsert(pvcagg.MustParseExpr(v), pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]))
	}
	db.Add(p1)
	p2 := pvcagg.NewRelation("P2", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	db.Registry.DeclareBool("z5", p)
	p2.MustInsert(pvcagg.MustParseExpr("z5"), pvcagg.IntCell(1), pvcagg.IntCell(5))
	db.Add(p2)
	return db
}

func cellsOf(t pvcagg.Tuple) string {
	out := "⟨"
	for i, c := range t.Cells {
		if i > 0 {
			out += ", "
		}
		out += c.String()
	}
	return out + "⟩"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvcrun:", err)
	os.Exit(1)
}

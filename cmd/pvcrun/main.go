// Command pvcrun evaluates the paper's running-example queries (Figure 1)
// or the TPC-H experiment queries on generated data, printing the result
// pvc-table with annotations, the tractability classification, and the
// probability of every answer tuple.
//
// Usage:
//
//	pvcrun -demo shop  -p 0.5              # Figure 1 database, queries Q1/Q2
//	pvcrun -demo tpch  -sf 0.001           # TPC-H Q1 and Q2
//	pvcrun -demo tpch  -sf 0.001 -parallel 0  # parallel probability step (GOMAXPROCS)
//	pvcrun -demo shop  -eps 0.01           # anytime bounds of width ≤ 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"pvcagg"
	"pvcagg/internal/tpch"
)

func main() {
	var (
		demo     = flag.String("demo", "shop", "demo database: shop or tpch")
		p        = flag.Float64("p", 0.5, "tuple marginal probability (shop demo)")
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor (tpch demo)")
		parallel = flag.Int("parallel", 1, "probability-step parallelism (0 = GOMAXPROCS, 1 = sequential)")
		eps      = flag.Float64("eps", 0, "anytime confidence-bound width; > 0 selects the approximate engine")
	)
	flag.Parse()
	switch *demo {
	case "shop":
		runShop(*p, *parallel, *eps)
	case "tpch":
		runTPCH(*sf, *parallel, *eps)
	default:
		fmt.Fprintf(os.Stderr, "pvcrun: unknown demo %q\n", *demo)
		os.Exit(2)
	}
}

// answer is one printed result row: exact confidence (Lo == Hi) or
// anytime bounds, plus the expectation of the first aggregation column
// when present.
type answer struct {
	tuple  pvcagg.Tuple
	conf   pvcagg.Bounds
	agg    float64
	hasAgg bool
}

// newAnswer flattens one result tuple into a printed row.
func newAnswer(t pvcagg.Tuple, conf pvcagg.Bounds, aggDists []pvcagg.Dist) answer {
	a := answer{tuple: t, conf: conf}
	if len(aggDists) > 0 {
		a.agg, a.hasAgg = aggDists[0].Expectation(), true
	}
	return a
}

// runPlan dispatches to the exact (sequential or parallel) or anytime
// entry point, flattening the per-tuple results for printing.
func runPlan(db *pvcagg.Database, plan pvcagg.Plan, parallel int, eps float64) (*pvcagg.Relation, []answer, pvcagg.RunTiming, error) {
	par := pvcagg.ParallelOptions{Parallelism: parallel}
	if eps > 0 {
		rel, results, timing, err := pvcagg.RunApprox(db, plan, pvcagg.ApproxOptions{Eps: eps}, par)
		if err != nil {
			return nil, nil, timing, err
		}
		out := make([]answer, len(results))
		for i, r := range results {
			out[i] = newAnswer(r.Tuple, r.Confidence, r.AggDists)
		}
		return rel, out, timing, nil
	}
	var (
		rel     *pvcagg.Relation
		results []pvcagg.TupleResult
		timing  pvcagg.RunTiming
		err     error
	)
	if parallel == 1 {
		rel, results, timing, err = pvcagg.Run(db, plan)
	} else {
		rel, results, timing, err = pvcagg.RunParallel(db, plan, par)
	}
	if err != nil {
		return nil, nil, timing, err
	}
	out := make([]answer, len(results))
	for i, r := range results {
		out[i] = newAnswer(r.Tuple, pvcagg.Bounds{Lo: r.Confidence, Hi: r.Confidence}, r.AggDists)
	}
	return rel, out, timing, nil
}

// confString renders an exact confidence as a number and anytime bounds as
// an interval.
func confString(b pvcagg.Bounds) string {
	if b.Lo == b.Hi {
		return fmt.Sprintf("%.6g", b.Lo)
	}
	return b.String()
}

func runShop(p float64, parallel int, eps float64) {
	db := shopDB(p)
	q1 := &pvcagg.Project{
		Cols: []string{"shop", "price"},
		Input: &pvcagg.Join{
			L: &pvcagg.Join{L: &pvcagg.Scan{Table: "S"}, R: &pvcagg.Scan{Table: "PS"}},
			R: &pvcagg.Union{L: &pvcagg.Scan{Table: "P1"}, R: &pvcagg.Scan{Table: "P2"}},
		},
	}
	q2 := &pvcagg.Project{
		Cols: []string{"shop"},
		Input: &pvcagg.Select{
			Pred: pvcagg.Where(pvcagg.ColTheta("P", pvcagg.LE, pvcagg.IntCell(50))),
			Input: &pvcagg.GroupAgg{
				Input:   q1,
				GroupBy: []string{"shop"},
				Aggs:    []pvcagg.AggSpec{{Out: "P", Agg: pvcagg.MAX, Over: "price"}},
			},
		},
	}
	for _, q := range []struct {
		name string
		plan pvcagg.Plan
	}{{"Q1", q1}, {"Q2", q2}} {
		fmt.Printf("== %s = %s\n", q.name, q.plan)
		fmt.Printf("   class: %v\n", pvcagg.Classify(q.plan, db))
		rel, results, timing, err := runPlan(db, q.plan, parallel, eps)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rel)
		for _, r := range results {
			fmt.Printf("   P[%v] = %s\n", cellsOf(r.tuple), confString(r.conf))
		}
		fmt.Printf("   ⟦·⟧ %v, P(·) %v\n\n", timing.Construct, timing.Probability)
	}
}

func runTPCH(sf float64, parallel int, eps float64) {
	db, err := tpch.Generate(tpch.Config{SF: sf, Seed: 1, Probabilistic: true})
	if err != nil {
		fatal(err)
	}
	for _, q := range []struct {
		name string
		plan pvcagg.Plan
	}{
		{"TPC-H Q1", tpch.Q1(1200)},
		{"TPC-H Q2", tpch.Q2(1, "AFRICA")},
	} {
		fmt.Printf("== %s\n", q.name)
		rel, results, timing, err := runPlan(db, q.plan, parallel, eps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("   %d answer tuples; ⟦·⟧ %v, P(·) %v\n", rel.Len(), timing.Construct, timing.Probability)
		for i, r := range results {
			if i >= 8 {
				fmt.Printf("   … %d more\n", len(results)-i)
				break
			}
			fmt.Printf("   P[%v] = %s", cellsOf(r.tuple), confString(r.conf))
			if r.hasAgg {
				fmt.Printf("  E[agg] = %.6g", r.agg)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func shopDB(p float64) *pvcagg.Database {
	db := pvcagg.NewDatabase(pvcagg.Boolean)
	s := pvcagg.NewRelation("S", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "shop", Type: pvcagg.TString},
	})
	shops := []string{"M&S", "M&S", "M&S", "Gap", "Gap"}
	for i, shop := range shops {
		db.Registry.DeclareBool(fmt.Sprintf("x%d", i+1), p)
		s.MustInsert(pvcagg.MustParseExpr(fmt.Sprintf("x%d", i+1)),
			pvcagg.IntCell(int64(i+1)), pvcagg.StringCell(shop))
	}
	db.Add(s)
	ps := pvcagg.NewRelation("PS", pvcagg.Schema{
		{Name: "sid", Type: pvcagg.TValue},
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "price", Type: pvcagg.TValue},
	})
	for _, row := range [][3]int64{
		{1, 1, 10}, {1, 2, 50}, {2, 1, 11}, {2, 2, 60}, {3, 3, 15},
		{3, 4, 40}, {4, 1, 15}, {4, 3, 60}, {5, 1, 10},
	} {
		v := fmt.Sprintf("y%d%d", row[0], row[1])
		db.Registry.DeclareBool(v, p)
		ps.MustInsert(pvcagg.MustParseExpr(v),
			pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]), pvcagg.IntCell(row[2]))
	}
	db.Add(ps)
	p1 := pvcagg.NewRelation("P1", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	for i, row := range [][2]int64{{1, 4}, {2, 8}, {3, 7}, {4, 6}} {
		v := fmt.Sprintf("z%d", i+1)
		db.Registry.DeclareBool(v, p)
		p1.MustInsert(pvcagg.MustParseExpr(v), pvcagg.IntCell(row[0]), pvcagg.IntCell(row[1]))
	}
	db.Add(p1)
	p2 := pvcagg.NewRelation("P2", pvcagg.Schema{
		{Name: "pid", Type: pvcagg.TValue},
		{Name: "weight", Type: pvcagg.TValue},
	})
	db.Registry.DeclareBool("z5", p)
	p2.MustInsert(pvcagg.MustParseExpr("z5"), pvcagg.IntCell(1), pvcagg.IntCell(5))
	db.Add(p2)
	return db
}

func cellsOf(t pvcagg.Tuple) string {
	out := "⟨"
	for i, c := range t.Cells {
		if i > 0 {
			out += ", "
		}
		out += c.String()
	}
	return out + "⟩"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pvcrun:", err)
	os.Exit(1)
}

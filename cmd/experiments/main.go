// Command experiments regenerates the paper's evaluation (Section 7):
// Experiments A–E on random conditional expressions (Figures 7–10) and
// Experiment F on TPC-H data (Figure 11), printing the same series the
// paper plots.
//
// Usage:
//
//	experiments                 # every experiment, quick preset
//	experiments -exp A          # one experiment
//	experiments -preset paper   # the paper's exact parameters (slow!)
//	experiments -runs 10        # runs per point
//	experiments -parallel 0     # parallel compile/probability (GOMAXPROCS)
//	experiments -eps 0.05       # anytime approximate engine at bound width ε
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"pvcagg/internal/algebra"
	"pvcagg/internal/benchx"
	"pvcagg/internal/gen"
	"pvcagg/internal/value"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: A, B, C, D, E, F or all")
		preset   = flag.String("preset", "quick", "parameter preset: quick or paper")
		runs     = flag.Int("runs", 5, "runs per measured point")
		parallel = flag.Int("parallel", 1, "compilation/probability parallelism (0 = GOMAXPROCS, 1 = sequential)")
		eps      = flag.Float64("eps", 0, "anytime bound width; > 0 measures the approximate engine")
	)
	flag.Parse()
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if *eps > 0 && *parallel > 1 {
		// Experiments A–E measure single expressions; the anytime engine's
		// expansion loop is sequential, so -parallel only affects
		// Experiment F's per-tuple fan-out there.
		fmt.Fprintln(os.Stderr, "experiments: note: with -eps > 0, -parallel applies only to Experiment F")
	}

	var base gen.Params
	switch *preset {
	case "quick":
		base = benchx.QuickBase()
	case "paper":
		base = benchx.PaperBase()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	o := benchx.Options{Runs: *runs, Parallel: *parallel, Eps: *eps}
	w := os.Stdout
	want := strings.ToUpper(*exp)
	run := func(name string) bool { return want == "ALL" || want == name }

	aggs := []algebra.Agg{algebra.Min, algebra.Max, algebra.Count, algebra.Sum}
	thetas := []value.Theta{value.EQ, value.LE, value.GE}

	if run("A") {
		cs := []int64{0, 25, 50, 100, 150, 200, 250, 300}
		for _, agg := range aggs {
			b := base
			csAgg := cs
			if agg == algebra.Sum && *preset == "paper" {
				csAgg = []int64{0, 2500, 5000, 10000, 15000, 20000, 25000, 30000}
			}
			pts := benchx.ExperimentA(b, agg, thetas, csAgg, o)
			benchx.Print(w, fmt.Sprintf("Experiment A (Figure 7): %s, varying c", agg), pts)
			fmt.Fprintln(w)
		}
	}
	if run("B") {
		ls := []int{10, 25, 50, 100, 200}
		if *preset == "paper" {
			ls = []int{10, 50, 100, 250, 500, 1000}
		}
		b := base
		b.Theta = value.EQ
		pts := benchx.ExperimentB(b, aggs, ls, o)
		benchx.Print(w, "Experiment B (Figure 8b): varying the number of terms L", pts)
		fmt.Fprintln(w)
	}
	if run("C") {
		b := base
		b.L = 40
		b.NumClauses = 2
		b.NumLiterals = 2
		b.MaxV = 5
		b.C = 3
		b.Theta = value.EQ
		b.AggL = algebra.Min
		vs := []int{4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
		if *preset == "paper" {
			b.L = 90
			vs = []int{10, 25, 50, 75, 100, 150, 200, 250, 300}
		}
		pts := benchx.ExperimentC(b, vs, o)
		benchx.Print(w, "Experiment C (Figure 8a): varying the number of variables #v (easy/hard/easy)", pts)
		fmt.Fprintln(w)
	}
	if run("D") {
		b := base
		b.L = 40
		b.MaxV = 5
		b.C = 3
		b.Theta = value.LE
		if *preset == "paper" {
			b.L = 100
		}
		pts := benchx.ExperimentD(b, aggs, []int{1, 2, 4, 8, 16, 24}, true, o)
		benchx.Print(w, "Experiment D (Figure 9a): varying literals per clause #l", pts)
		fmt.Fprintln(w)
		pts = benchx.ExperimentD(b, aggs, []int{1, 2, 4, 8, 16}, false, o)
		benchx.Print(w, "Experiment D (Figure 9b): varying clauses per term #cl", pts)
		fmt.Fprintln(w)
	}
	if run("E") {
		b := base
		b.NumClauses = 2
		b.NumLiterals = 2
		b.MaxV = 200
		b.C = 100
		b.Theta = value.LE
		pairs := []benchx.AggPair{
			{L: algebra.Min, R: algebra.Max},
			{L: algebra.Min, R: algebra.Count},
			{L: algebra.Max, R: algebra.Sum},
		}
		xs := []int{10, 25, 50, 100, 200}
		fixed := 40
		if *preset == "paper" {
			xs = []int{100, 250, 500, 1000, 1500, 2000}
			fixed = 150
		}
		b.R = fixed
		pts := benchx.ExperimentE(b, pairs, xs, true, o)
		benchx.Print(w, fmt.Sprintf("Experiment E (Figure 10a): varying L at R=%d", fixed), pts)
		fmt.Fprintln(w)
		b.L = fixed
		pts = benchx.ExperimentE(b, pairs, xs, false, o)
		benchx.Print(w, fmt.Sprintf("Experiment E (Figure 10b): varying R at L=%d", fixed), pts)
		fmt.Fprintln(w)
	}
	if run("F") {
		sfs := []float64{0.0002, 0.0005, 0.001, 0.002}
		if *preset == "paper" {
			sfs = []float64{0.005, 0.01, 0.02, 0.05, 0.1}
		}
		pts, err := benchx.ExperimentF(sfs, 1, *parallel, *eps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		benchx.PrintF(w, pts)
	}
}
